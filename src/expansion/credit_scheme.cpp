#include "expansion/credit_scheme.hpp"

#include <cmath>
#include <unordered_map>

#include "core/error.hpp"
#include "core/math_util.hpp"
#include "expansion/expansion.hpp"

namespace bfly::expansion {

namespace {

// Children of <w, l> in a down-tree (+1 direction) or up-tree (-1) of a
// butterfly-family network. `wrap` selects mod-d level arithmetic (Wn).
struct TreeStepper {
  std::uint32_t dims;
  bool wrap;

  // Returns the two child columns and the child level for a node at
  // (column, level) stepping in `dir` (+1 = down, -1 = up).
  struct Step {
    std::uint32_t col_straight, col_cross, level;
  };

  [[nodiscard]] Step step(std::uint32_t col, std::uint32_t lvl,
                          int dir) const {
    Step s{};
    if (dir > 0) {
      // Boundary lvl flips paper position lvl+1.
      const std::uint32_t mask = topo::bit_mask(dims, (lvl % dims) + 1);
      s.level = wrap ? (lvl + 1) % dims : lvl + 1;
      s.col_straight = col;
      s.col_cross = col ^ mask;
    } else {
      // Stepping up across boundary lvl-1 flips paper position lvl.
      const std::uint32_t prev = wrap ? (lvl + dims - 1) % dims : lvl - 1;
      const std::uint32_t mask = topo::bit_mask(dims, prev % dims + 1);
      s.level = prev;
      s.col_straight = col;
      s.col_cross = col ^ mask;
    }
    return s;
  }
};

std::uint64_t edge_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

struct Accumulator {
  std::unordered_map<std::uint64_t, double> edge_credit;  // cut edges
  std::vector<double> node_credit;                        // N(A) nodes
  double stranded = 0.0;
};

// Distributes `credit` from (col, lvl) for `depth_left` more tree levels.
// Edge mode: credit sticks to cut edges and leaf edges; node mode: to
// non-A nodes and leaf nodes.
template <typename Net>
void descend(const Net& net, const TreeStepper& st,
             const std::vector<std::uint8_t>& in_a, bool node_mode, int dir,
             std::uint32_t col, std::uint32_t lvl, std::uint32_t depth_left,
             double credit, Accumulator& acc) {
  const TreeStepper::Step s = st.step(col, lvl, dir);
  const NodeId parent = net.node(col, lvl);
  const double half = credit / 2.0;
  for (const std::uint32_t child_col : {s.col_straight, s.col_cross}) {
    const NodeId child = net.node(child_col, s.level);
    if (node_mode) {
      if (!in_a[child]) {
        acc.node_credit[child] += half;  // child is in N(A)
      } else if (depth_left == 1) {
        acc.stranded += half;  // leaf of the tree, still inside A
      } else {
        descend(net, st, in_a, node_mode, dir, child_col, s.level,
                depth_left - 1, half, acc);
      }
    } else {
      const bool cut_edge = in_a[parent] != in_a[child];
      if (cut_edge) {
        acc.edge_credit[edge_key(parent, child)] += half;
      } else if (depth_left == 1) {
        acc.stranded += half;
      } else {
        descend(net, st, in_a, node_mode, dir, child_col, s.level,
                depth_left - 1, half, acc);
      }
    }
  }
}

CreditReport finalize(const Accumulator& acc, std::size_t k,
                      double per_item_cap, std::size_t actual_boundary) {
  CreditReport rep;
  rep.per_item_cap = per_item_cap;
  rep.retained_elsewhere = acc.stranded;
  for (const auto& [key, c] : acc.edge_credit) {
    rep.retained_by_boundary += c;
    rep.max_per_boundary_item = std::max(rep.max_per_boundary_item, c);
  }
  for (const double c : acc.node_credit) {
    if (c > 0) {
      rep.retained_by_boundary += c;
      rep.max_per_boundary_item = std::max(rep.max_per_boundary_item, c);
    }
  }
  rep.implied_lower_bound = rep.retained_by_boundary / per_item_cap;
  rep.actual_boundary = actual_boundary;
  // Credit conservation: every node of A injected exactly one unit, and
  // each unit either stuck to a boundary item or stranded on a leaf.
  BFLY_ASSERT_MSG(
      std::abs(rep.retained_by_boundary + rep.retained_elsewhere -
               static_cast<double>(k)) <=
          1e-9 * static_cast<double>(k == 0 ? 1 : k),
      "credit scheme lost or duplicated credit");
  return rep;
}

template <typename Net>
std::vector<std::uint8_t> membership(const Net& net,
                                     std::span<const NodeId> set) {
  std::vector<std::uint8_t> in(net.num_nodes(), 0);
  for (const NodeId v : set) {
    BFLY_CHECK(v < net.num_nodes(), "set node out of range");
    in[v] = 1;
  }
  return in;
}

}  // namespace

CreditReport credit_edge_wn(const topo::WrappedButterfly& wb,
                            std::span<const NodeId> set) {
  const auto in_a = membership(wb, set);
  const TreeStepper st{wb.dims(), /*wrap=*/true};
  Accumulator acc;
  for (const NodeId u : set) {
    descend(wb, st, in_a, /*node_mode=*/false, +1, wb.column(u),
            wb.level(u), wb.dims(), 0.5, acc);
    descend(wb, st, in_a, /*node_mode=*/false, -1, wb.column(u),
            wb.level(u), wb.dims(), 0.5, acc);
  }
  const std::size_t k = set.size();
  const double cap =
      (std::floor(std::log2(static_cast<double>(k))) + 1.0) / 4.0;
  return finalize(acc, k, cap, edge_boundary(wb.graph(), set));
}

CreditReport credit_node_wn(const topo::WrappedButterfly& wb,
                            std::span<const NodeId> set) {
  const auto in_a = membership(wb, set);
  const TreeStepper st{wb.dims(), /*wrap=*/true};
  Accumulator acc;
  acc.node_credit.assign(wb.num_nodes(), 0.0);
  for (const NodeId u : set) {
    descend(wb, st, in_a, /*node_mode=*/true, +1, wb.column(u), wb.level(u),
            wb.dims(), 0.5, acc);
    descend(wb, st, in_a, /*node_mode=*/true, -1, wb.column(u), wb.level(u),
            wb.dims(), 0.5, acc);
  }
  const std::size_t k = set.size();
  const double cap =
      std::max(1.0, std::floor(std::log2(static_cast<double>(k))));
  return finalize(acc, k, cap, node_boundary(wb.graph(), set));
}

CreditReport credit_edge_bn(const topo::Butterfly& bf,
                            std::span<const NodeId> set) {
  const auto in_a = membership(bf, set);
  const std::uint32_t d = bf.dims();
  const TreeStepper st{d, /*wrap=*/false};
  const std::uint32_t split = (d + 1) / 2;  // floor((log n + 1)/2)
  Accumulator acc;
  for (const NodeId u : set) {
    const std::uint32_t lvl = bf.level(u);
    if (lvl < split) {
      if (lvl < d) {
        descend(bf, st, in_a, /*node_mode=*/false, +1, bf.column(u), lvl,
                d - lvl, 1.0, acc);
      }
    } else {
      if (lvl > 0) {
        descend(bf, st, in_a, /*node_mode=*/false, -1, bf.column(u), lvl,
                lvl, 1.0, acc);
      }
    }
  }
  const std::size_t k = set.size();
  const double cap =
      (std::floor(std::log2(static_cast<double>(k))) + 1.0) / 2.0;
  return finalize(acc, k, cap, edge_boundary(bf.graph(), set));
}

CreditReport credit_node_bn(const topo::Butterfly& bf,
                            std::span<const NodeId> set) {
  const auto in_a = membership(bf, set);
  const std::uint32_t d = bf.dims();
  const TreeStepper st{d, /*wrap=*/false};
  const std::uint32_t split = (d + 1) / 2;
  Accumulator acc;
  acc.node_credit.assign(bf.num_nodes(), 0.0);
  for (const NodeId u : set) {
    const std::uint32_t lvl = bf.level(u);
    if (lvl < split) {
      if (lvl < d) {
        descend(bf, st, in_a, /*node_mode=*/true, +1, bf.column(u), lvl,
                d - lvl, 1.0, acc);
      }
    } else {
      if (lvl > 0) {
        descend(bf, st, in_a, /*node_mode=*/true, -1, bf.column(u), lvl,
                lvl, 1.0, acc);
      }
    }
  }
  const std::size_t k = set.size();
  const double cap =
      std::max(1.0, 2.0 * std::floor(std::log2(static_cast<double>(k))));
  return finalize(acc, k, cap, node_boundary(bf.graph(), set));
}

}  // namespace bfly::expansion
