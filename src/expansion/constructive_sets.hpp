// The extremal node sets behind the paper's expansion UPPER bounds
// (Section 4.3 upper-bound table):
//   Lemma 4.1: a sub-butterfly of Wn      -> EE(Wn,k) <= (4+o(1))k/log k
//   Lemma 4.4: two sub-butterflies in Wn  -> NE(Wn,k) <= (3+o(1))k/log k
//   Lemma 4.7: input-anchored sub-bfly    -> EE(Bn,k) <= (2+o(1))k/log k
//   Lemma 4.10: two output-anchored ones  -> NE(Bn,k) <= (1+o(1))k/log k
// Each function returns the concrete set; callers measure its boundary
// with expansion::edge_boundary / node_boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "topology/butterfly.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::expansion {

/// Lemma 4.1 witness: the delta-dimensional sub-butterfly of Wn spanning
/// levels 0..delta on the 2^delta columns whose non-top bits are zero.
/// |set| = (delta+1) * 2^delta. Requires delta <= log n - 1.
[[nodiscard]] std::vector<NodeId> wn_ee_set(const topo::WrappedButterfly& wb,
                                            std::uint32_t delta);

/// Lemma 4.4 witness: the union of two delta-dimensional sub-butterflies
/// B', B'' inside a (delta+1)-dimensional one (its levels 1..delta+1).
/// |set| = (delta+1) * 2^(delta+1). Requires delta <= log n - 2.
[[nodiscard]] std::vector<NodeId> wn_ne_set(const topo::WrappedButterfly& wb,
                                            std::uint32_t delta);

/// Lemma 4.7 witness: sub-butterfly whose level 0 sits on level 0 of Bn
/// (inputs have no outside neighbors). |set| = (delta+1) * 2^delta.
/// Requires delta <= log n.
[[nodiscard]] std::vector<NodeId> bn_ee_set(const topo::Butterfly& bf,
                                            std::uint32_t delta);

/// Lemma 4.10 witness: two sub-butterflies with outputs on level log n of
/// Bn (outputs have no outside neighbors). |set| = (delta+1)*2^(delta+1).
/// Requires delta <= log n - 1.
[[nodiscard]] std::vector<NodeId> bn_ne_set(const topo::Butterfly& bf,
                                            std::uint32_t delta);

}  // namespace bfly::expansion
