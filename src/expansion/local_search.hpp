// Heuristic minimum-expansion sets for sizes beyond exhaustive reach:
// greedy growth from random seeds followed by swap-based local search,
// for both the edge (EE) and node (NE) objectives. Results are upper
// bounds on EE(G,k) / NE(G,k) and, on the structured butterfly instances,
// routinely match the constructive sub-butterfly sets.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::expansion {

struct LocalSearchOptions {
  std::uint32_t restarts = 8;
  std::uint32_t max_passes = 32;  ///< swap passes per restart
  std::uint64_t seed = 0x10ca1u;
  /// Optional warm starts (each must have exactly k distinct nodes);
  /// every seed set gets its own swap-refined run in addition to the
  /// random restarts. Use the paper's constructive sets here.
  std::vector<std::vector<NodeId>> seed_sets;
};

struct SetResult {
  std::vector<NodeId> set;
  std::size_t objective = 0;  ///< edge or node boundary of `set`
};

/// Heuristic min edge-boundary set of size k.
[[nodiscard]] SetResult min_ee_set_local_search(
    const Graph& g, std::size_t k, const LocalSearchOptions& opts = {});

/// Heuristic min node-boundary set of size k.
[[nodiscard]] SetResult min_ne_set_local_search(
    const Graph& g, std::size_t k, const LocalSearchOptions& opts = {});

}  // namespace bfly::expansion
