#include "expansion/expansion.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>

#include "core/error.hpp"
#include "core/math_util.hpp"
#include "core/sharding.hpp"
#include "core/sync.hpp"
#include "core/thread_pool.hpp"
#include "robust/fault_injection.hpp"

namespace bfly::expansion {

namespace {
constexpr std::size_t kUnseen = std::numeric_limits<std::size_t>::max();
}

std::size_t edge_boundary(const Graph& g, std::span<const NodeId> set) {
  std::vector<std::uint8_t> in(g.num_nodes(), 0);
  for (const NodeId v : set) {
    BFLY_CHECK(v < g.num_nodes(), "set node out of range");
    in[v] = 1;
  }
  std::size_t c = 0;
  for (const auto& [u, v] : g.edges()) {
    if (in[u] != in[v]) ++c;
  }
  return c;
}

std::vector<NodeId> neighbor_set(const Graph& g,
                                 std::span<const NodeId> set) {
  std::vector<std::uint8_t> in(g.num_nodes(), 0);
  for (const NodeId v : set) {
    BFLY_CHECK(v < g.num_nodes(), "set node out of range");
    in[v] = 1;
  }
  std::vector<std::uint8_t> seen(g.num_nodes(), 0);
  std::vector<NodeId> out;
  for (const NodeId v : set) {
    for (const NodeId u : g.neighbors(v)) {
      if (!in[u] && !seen[u]) {
        seen[u] = 1;
        out.push_back(u);
      }
    }
  }
  return out;
}

std::size_t node_boundary(const Graph& g, std::span<const NodeId> set) {
  return neighbor_set(g, set).size();
}

namespace {

// Abort/budget state pooled across the shard workers of one sweep.
struct SweepShared {
  std::atomic<std::uint64_t> pooled_visited{0};
  std::atomic<bool> aborted{false};
};

// One shard of the exhaustive sweep: incremental membership / boundary
// state plus a per-size best table. With p fixed top bits the shard
// seeds its high-node pattern in O(p) toggles and then walks the
// standard binary-reflected Gray code over the low n-p bits, so every
// state transition still flips exactly one node. p == 0 is the classic
// serial sweep, enumeration order included.
class ShardSweep {
 public:
  ShardSweep(const Graph& g, const ExactExpansionOptions& opts,
             std::size_t max_k, SweepShared& shared)
      : g_(g),
        opts_(opts),
        max_k_(max_k),
        shared_(shared),
        n_(g.num_nodes()),
        in_(n_, 0),
        nbr_cnt_(n_, 0),
        best_ee_(max_k + 1, kUnseen),
        best_ne_(max_k + 1, kUnseen),
        table_(max_k + 1) {}

  // Runs the sub-sweep with the top p nodes fixed to `high_pattern`.
  void run(unsigned p, std::uint64_t high_pattern) {
    const NodeId low = static_cast<NodeId>(n_ - p);
    for (unsigned b = 0; b < p; ++b) {
      if ((high_pattern >> b) & 1u) toggle(static_cast<NodeId>(low + b));
    }
    visit();  // the seed state itself
    if (!aborted_) {
      const std::uint64_t low_states = 1ull << low;
      for (std::uint64_t i = 1; i < low_states && !aborted_; ++i) {
        toggle(static_cast<NodeId>(std::countr_zero(i)));
        visit();
      }
    }
    flush_and_poll();
  }

  [[nodiscard]] const std::vector<std::size_t>& best_ee() const {
    return best_ee_;
  }
  [[nodiscard]] const std::vector<std::size_t>& best_ne() const {
    return best_ne_;
  }
  [[nodiscard]] std::vector<ExpansionEntry>& table() { return table_; }
  [[nodiscard]] std::uint64_t visited() const { return visited_; }

 private:
  void toggle(NodeId v) {
    if (!in_[v]) {
      // v enters S.
      if (nbr_cnt_[v] > 0) --ne_;  // v no longer counts as a neighbor
      std::size_t to_s = 0;
      for (const NodeId u : g_.neighbors(v)) {
        if (in_[u]) {
          ++to_s;
        } else {
          if (nbr_cnt_[u] == 0) ++ne_;
        }
        ++nbr_cnt_[u];
      }
      cap_ += g_.degree(v) - 2 * to_s;
      in_[v] = 1;
      ++size_;
    } else {
      // v leaves S.
      std::size_t to_s = 0;
      for (const NodeId u : g_.neighbors(v)) {
        --nbr_cnt_[u];
        if (in_[u]) {
          ++to_s;
        } else {
          if (nbr_cnt_[u] == 0) --ne_;
        }
      }
      cap_ -= g_.degree(v) - 2 * to_s;
      in_[v] = 0;
      --size_;
      if (nbr_cnt_[v] > 0) ++ne_;
    }
  }

  [[nodiscard]] std::vector<NodeId> snapshot() const {
    std::vector<NodeId> s;
    s.reserve(size_);
    for (NodeId v = 0; v < n_; ++v) {
      if (in_[v]) s.push_back(v);
    }
    return s;
  }

  void visit() {
    ++visited_;
    if (opts_.state_budget != 0 &&
        pool_at_flush_ + (visited_ - last_flushed_) > opts_.state_budget) {
      aborted_ = true;
      shared_.aborted.store(true, std::memory_order_relaxed);
      return;
    }
    if ((visited_ & 0xfffu) == 0) {
      flush_and_poll();
      if (aborted_) return;
    }
    if (size_ == 0 || size_ > max_k_) return;
    if (cap_ < best_ee_[size_]) {
      best_ee_[size_] = cap_;
      table_[size_].ee = cap_;
      if (opts_.keep_witnesses) table_[size_].ee_witness = snapshot();
    }
    if (ne_ < best_ne_[size_]) {
      best_ne_[size_] = ne_;
      table_[size_].ne = ne_;
      if (opts_.keep_witnesses) table_[size_].ne_witness = snapshot();
    }
  }

  void flush_and_poll() {
    // Simulated-crash fault point, hit before the flush so a crashed
    // shard never contributes a partial state count.
    BFLY_FAULT_POINT(kCrash);
    shared_.pooled_visited.fetch_add(visited_ - last_flushed_,
                                     std::memory_order_relaxed);
    last_flushed_ = visited_;
    pool_at_flush_ =
        shared_.pooled_visited.load(std::memory_order_relaxed);
    if (opts_.progress != nullptr) {
      opts_.progress->store(pool_at_flush_, std::memory_order_relaxed);
    }
    if (shared_.aborted.load(std::memory_order_relaxed)) {
      aborted_ = true;
      return;
    }
    if (opts_.cancel != nullptr && opts_.cancel->stop_requested()) {
      aborted_ = true;
      shared_.aborted.store(true, std::memory_order_relaxed);
    }
  }

  const Graph& g_;
  const ExactExpansionOptions& opts_;
  std::size_t max_k_;
  SweepShared& shared_;
  NodeId n_;

  std::vector<std::uint8_t> in_;
  std::vector<std::uint32_t> nbr_cnt_;  // edges from v into S
  std::size_t size_ = 0, cap_ = 0, ne_ = 0;

  std::vector<std::size_t> best_ee_, best_ne_;
  std::vector<ExpansionEntry> table_;

  std::uint64_t visited_ = 0;
  std::uint64_t last_flushed_ = 0;
  std::uint64_t pool_at_flush_ = 0;
  bool aborted_ = false;
};

// Deterministic reduction of per-shard sweep results. Each worker
// absorbs its shard under the merger's mutex as soon as the shard
// finishes, so the shard's tables die with the worker instead of every
// ShardSweep staying alive until a global post-join merge. Ties on
// equal minima are broken toward the smaller job index, which
// reproduces exactly the witness the old fixed-order serial merge
// selected — the merged result is independent of thread count and
// absorb schedule.
class ShardMerger {
 public:
  explicit ShardMerger(std::size_t max_k)
      : best_ee_(max_k + 1, kUnseen),
        best_ne_(max_k + 1, kUnseen),
        ee_from_(max_k + 1, kNoJob),
        ne_from_(max_k + 1, kNoJob),
        table_(max_k + 1) {
    for (std::size_t k = 1; k < table_.size(); ++k) {
      table_[k].ee = kUnseen;
      table_[k].ne = kUnseen;
    }
  }

  ShardMerger(const ShardMerger&) = delete;
  ShardMerger& operator=(const ShardMerger&) = delete;

  // Folds one finished (possibly aborted-partial) shard into the merged
  // tables; steals its witnesses. `weight` is the shard's orbit size.
  void absorb(std::size_t job_index, std::uint64_t weight,
              ShardSweep& shard) {
    const sync::MutexLock lock(mu_);
    for (std::size_t k = 1; k < table_.size(); ++k) {
      const std::size_t ee = shard.best_ee()[k];
      if (ee != kUnseen &&
          (ee < best_ee_[k] ||
           (ee == best_ee_[k] && job_index < ee_from_[k]))) {
        best_ee_[k] = ee;
        ee_from_[k] = job_index;
        table_[k].ee = ee;
        table_[k].ee_witness = std::move(shard.table()[k].ee_witness);
      }
      const std::size_t ne = shard.best_ne()[k];
      if (ne != kUnseen &&
          (ne < best_ne_[k] ||
           (ne == best_ne_[k] && job_index < ne_from_[k]))) {
        best_ne_[k] = ne;
        ne_from_[k] = job_index;
        table_[k].ne = ne;
        table_[k].ne_witness = std::move(shard.table()[k].ne_witness);
      }
    }
    visited_weighted_ += weight * shard.visited();
  }

  // Moves the merged tables out. Called once, after the sweep workers
  // have been joined (the lock is for the analysis; the join already
  // ordered every absorb before this read).
  void finalize(ExactExpansionResult& res) {
    const sync::MutexLock lock(mu_);
    res.table = std::move(table_);
    res.visited_states = visited_weighted_;
  }

 private:
  static constexpr std::size_t kNoJob =
      std::numeric_limits<std::size_t>::max();

  sync::Mutex mu_;
  std::vector<std::size_t> best_ee_ BFLY_GUARDED_BY(mu_);
  std::vector<std::size_t> best_ne_ BFLY_GUARDED_BY(mu_);
  std::vector<std::size_t> ee_from_ BFLY_GUARDED_BY(mu_);
  std::vector<std::size_t> ne_from_ BFLY_GUARDED_BY(mu_);
  std::vector<ExpansionEntry> table_ BFLY_GUARDED_BY(mu_);
  std::uint64_t visited_weighted_ BFLY_GUARDED_BY(mu_) = 0;
};

// One shard of the sweep: its fixed top-p-bit pattern and how many
// patterns its orbit stands in for (1 without symmetry reduction).
struct ShardJob {
  std::uint64_t pattern = 0;
  std::uint64_t weight = 1;
};

// Orbit-representative shard enumeration (DESIGN.md §10). Group
// elements that map the top-p node block {n-p .. n-1} onto itself act
// on the 2^p shard patterns by permuting the p bits; two shards in the
// same pattern orbit enumerate automorphic images of each other's
// subsets and tabulate identical per-size minima. Keep the
// lexicographically smallest pattern of every orbit, weighted by the
// orbit size. The induced permutations form a group (the image of the
// block stabilizer), so each orbit is one pass over the element list —
// no closure needed.
std::vector<ShardJob> enumerate_shard_jobs(
    const algo::PermutationGroup* symmetry, NodeId n, unsigned p) {
  const std::uint64_t num_shards = 1ull << p;
  std::vector<std::vector<std::uint8_t>> bit_perms;
  if (symmetry != nullptr && p > 0 && symmetry->elements() != nullptr) {
    const NodeId low = static_cast<NodeId>(n - p);
    for (const algo::Perm& perm : *symmetry->elements()) {
      std::vector<std::uint8_t> bp(p);
      bool stabilizes = true;
      for (unsigned b = 0; b < p && stabilizes; ++b) {
        const NodeId img = perm[low + b];
        if (img < low) {
          stabilizes = false;
        } else {
          bp[b] = static_cast<std::uint8_t>(img - low);
        }
      }
      if (!stabilizes) continue;
      bool known = false;
      for (const auto& seen : bit_perms) {
        if (seen == bp) {
          known = true;
          break;
        }
      }
      if (!known) bit_perms.push_back(std::move(bp));
    }
  }
  std::vector<ShardJob> jobs;
  if (bit_perms.size() <= 1) {
    jobs.reserve(num_shards);
    for (std::uint64_t h = 0; h < num_shards; ++h) jobs.push_back({h, 1});
    return jobs;
  }
  for (std::uint64_t h = 0; h < num_shards; ++h) {
    bool representative = true;
    std::vector<std::uint64_t> images;
    images.reserve(bit_perms.size());
    for (const auto& bp : bit_perms) {
      std::uint64_t img = 0;
      for (unsigned b = 0; b < p; ++b) {
        if ((h >> b) & 1u) img |= std::uint64_t{1} << bp[b];
      }
      if (img < h) {  // a smaller pattern represents this orbit
        representative = false;
        break;
      }
      images.push_back(img);
    }
    if (!representative) continue;
    std::sort(images.begin(), images.end());
    const auto distinct = static_cast<std::uint64_t>(
        std::unique(images.begin(), images.end()) - images.begin());
    jobs.push_back({h, distinct});
  }
  return jobs;
}

}  // namespace

ExactExpansionResult exact_expansion_full(const Graph& g,
                                          const ExactExpansionOptions& opts) {
  const NodeId n = g.num_nodes();
  BFLY_CHECK(n >= 1 && n < 63, "graph too large for exhaustive expansion");
  // Allocation-failure fault point: the sweep's up-front working set
  // (per-shard tables and counters) is modeled as failing here.
  BFLY_FAULT_POINT(kAlloc);
  const std::uint64_t states = 1ull << n;
  BFLY_CHECK(states <= opts.max_states,
             "exhaustive expansion exceeds the configured state limit");
  const std::size_t max_k =
      opts.max_k == 0 ? n : std::min<std::size_t>(opts.max_k, n);

  const unsigned threads =
      opts.num_threads == 0 ? default_thread_count() : opts.num_threads;
  unsigned p = opts.shard_bits;
  if (p == 0 && threads > 1) {
    // Several shards per worker so a lucky shard finishing early does
    // not idle its thread.
    while ((1ull << p) < 4ull * threads) ++p;
  }
  p = std::min<unsigned>(p, n > 0 ? n - 1 : 0);

  const std::vector<ShardJob> jobs = enumerate_shard_jobs(opts.symmetry, n, p);

  SweepShared shared;
  ShardMerger merger(max_k);
  // Each worker owns its ShardSweep (membership vectors, per-size
  // tables) for exactly as long as the shard runs, then folds it into
  // the merger — peak memory is one sweep per live thread, not one per
  // job. Shards are dispatched over the work-stealing scheduler, so an
  // unlucky worker whose shards all finish early steals the remainder
  // instead of idling (orbit-weighted shards vary widely in size). A
  // shard that throws (the kCrash fault point) is never absorbed; the
  // scheduler rethrows the first failure after draining, and the serial
  // single-shard path propagates immediately.
  const StealStats ws = WorkStealingScheduler::run(
      jobs.size(), [&](std::size_t i, unsigned /*worker*/) {
        ShardSweep shard(g, opts, max_k, shared);
        shard.run(p, jobs[i].pattern);
        merger.absorb(i, jobs[i].weight, shard);
      },
      WorkStealingScheduler::Options{threads, false});

  ExactExpansionResult res;
  merger.finalize(res);
  res.ws_spawned = ws.spawned;
  res.ws_steals = ws.steals;
  res.ws_idle_seconds = ws.idle_seconds;
  res.scanned_states = shared.pooled_visited.load(std::memory_order_relaxed);
  res.exactness = shared.aborted.load(std::memory_order_relaxed)
                      ? cut::Exactness::kHeuristic
                      : cut::Exactness::kExact;
  BFLY_ASSERT_MSG(
      res.exactness == cut::Exactness::kHeuristic ||
          res.visited_states == states,
      "a completed sweep must have (weighted) coverage of every subset "
      "exactly once — an incorrect symmetry group shows up here");

  if (checked_build() && opts.keep_witnesses &&
      res.exactness == cut::Exactness::kExact) {
    for (std::size_t k = 1; k <= max_k; ++k) {
      validate_expansion_entry(g, k, res.table[k]);
    }
  }
  return res;
}

std::vector<ExpansionEntry> exact_expansion(const Graph& g,
                                            const ExactExpansionOptions& opts) {
  return exact_expansion_full(g, opts).table;
}

void validate_expansion_entry(const Graph& g, std::size_t k,
                              const ExpansionEntry& entry) {
  const auto check_witness = [&](std::span<const NodeId> witness) {
    BFLY_CHECK(witness.size() == k, "expansion witness has wrong size");
    std::vector<std::uint8_t> seen(g.num_nodes(), 0);
    for (const NodeId v : witness) {
      BFLY_CHECK(v < g.num_nodes(), "expansion witness node out of range");
      BFLY_CHECK(!seen[v], "expansion witness node repeated");
      seen[v] = 1;
    }
  };
  if (!entry.ee_witness.empty() || k == 0) {
    check_witness(entry.ee_witness);
    BFLY_CHECK(edge_boundary(g, entry.ee_witness) == entry.ee,
               "recounted edge boundary does not match recorded EE");
  }
  if (!entry.ne_witness.empty() || k == 0) {
    check_witness(entry.ne_witness);
    BFLY_CHECK(node_boundary(g, entry.ne_witness) == entry.ne,
               "recounted node boundary does not match recorded NE");
  }
}

namespace {

// Incremental k-subset enumerator: maintains membership, edge boundary,
// and node boundary while extending the set one node at a time in
// increasing id order. Each extension is one work unit against the
// budget; cancellation is polled at an amortized cadence.
class SizeKSearcher {
 public:
  SizeKSearcher(const Graph& g, std::size_t k,
                const SizeKExpansionOptions& opts)
      : g_(g),
        k_(k),
        opts_(opts),
        in_(g.num_nodes(), 0),
        nbr_cnt_(g.num_nodes(), 0) {
    entry_.ee = kUnseen;
    entry_.ne = kUnseen;
  }

  SizeKExpansionResult run() {
    dfs(0);
    SizeKExpansionResult res;
    res.entry = std::move(entry_);
    res.exactness =
        aborted_ ? cut::Exactness::kHeuristic : cut::Exactness::kExact;
    res.visited_subsets = visited_;
    return res;
  }

 private:
  void add(NodeId v) {
    if (nbr_cnt_[v] > 0) --ne_;
    std::size_t to_s = 0;
    for (const NodeId u : g_.neighbors(v)) {
      if (in_[u]) {
        ++to_s;
      } else if (nbr_cnt_[u] == 0) {
        ++ne_;
      }
      ++nbr_cnt_[u];
    }
    cap_ += g_.degree(v) - 2 * to_s;
    in_[v] = 1;
    chosen_.push_back(v);
  }

  void remove(NodeId v) {
    std::size_t to_s = 0;
    for (const NodeId u : g_.neighbors(v)) {
      --nbr_cnt_[u];
      if (in_[u]) {
        ++to_s;
      } else if (nbr_cnt_[u] == 0) {
        --ne_;
      }
    }
    cap_ -= g_.degree(v) - 2 * to_s;
    in_[v] = 0;
    if (nbr_cnt_[v] > 0) ++ne_;
    chosen_.pop_back();
  }

  void dfs(NodeId next) {
    if (aborted_) return;
    if (chosen_.size() == k_) {
      if (cap_ < entry_.ee) {
        entry_.ee = cap_;
        entry_.ee_witness = chosen_;
      }
      if (ne_ < entry_.ne) {
        entry_.ne = ne_;
        entry_.ne_witness = chosen_;
      }
      return;
    }
    // Not enough nodes left to reach k: prune.
    const std::size_t needed = k_ - chosen_.size();
    if (g_.num_nodes() - next < needed) return;
    for (NodeId v = next; v < g_.num_nodes(); ++v) {
      ++visited_;
      if (opts_.work_budget != 0 && visited_ > opts_.work_budget) {
        aborted_ = true;
        return;
      }
      if (opts_.cancel != nullptr && (visited_ & 0xfffu) == 0 &&
          opts_.cancel->stop_requested()) {
        aborted_ = true;
        return;
      }
      add(v);
      dfs(v + 1);
      remove(v);
      if (aborted_) return;
      if (g_.num_nodes() - (v + 1) < needed) break;
    }
  }

  const Graph& g_;
  std::size_t k_;
  const SizeKExpansionOptions& opts_;
  std::vector<std::uint8_t> in_;
  std::vector<std::uint32_t> nbr_cnt_;
  std::vector<NodeId> chosen_;
  std::size_t cap_ = 0, ne_ = 0;
  ExpansionEntry entry_;
  std::uint64_t visited_ = 0;
  bool aborted_ = false;
};

}  // namespace

SizeKExpansionResult exact_expansion_of_size_full(
    const Graph& g, std::size_t k, const SizeKExpansionOptions& opts) {
  BFLY_CHECK(k >= 1 && k <= g.num_nodes(), "set size out of range");
  BFLY_CHECK(binomial_approx(g.num_nodes(), static_cast<unsigned>(k)) <=
                 opts.max_subsets,
             "C(N, k) exceeds the configured subset limit");
  SizeKSearcher searcher(g, k, opts);
  SizeKExpansionResult res = searcher.run();
  if (checked_build() && res.exactness == cut::Exactness::kExact) {
    validate_expansion_entry(g, k, res.entry);
  }
  return res;
}

ExpansionEntry exact_expansion_of_size(const Graph& g, std::size_t k,
                                       double max_subsets) {
  SizeKExpansionOptions opts;
  opts.max_subsets = max_subsets;
  return exact_expansion_of_size_full(g, k, opts).entry;
}

}  // namespace bfly::expansion
