#include "expansion/expansion.hpp"

#include <bit>
#include <limits>

#include "core/error.hpp"
#include "core/math_util.hpp"

namespace bfly::expansion {

std::size_t edge_boundary(const Graph& g, std::span<const NodeId> set) {
  std::vector<std::uint8_t> in(g.num_nodes(), 0);
  for (const NodeId v : set) {
    BFLY_CHECK(v < g.num_nodes(), "set node out of range");
    in[v] = 1;
  }
  std::size_t c = 0;
  for (const auto& [u, v] : g.edges()) {
    if (in[u] != in[v]) ++c;
  }
  return c;
}

std::vector<NodeId> neighbor_set(const Graph& g,
                                 std::span<const NodeId> set) {
  std::vector<std::uint8_t> in(g.num_nodes(), 0);
  for (const NodeId v : set) {
    BFLY_CHECK(v < g.num_nodes(), "set node out of range");
    in[v] = 1;
  }
  std::vector<std::uint8_t> seen(g.num_nodes(), 0);
  std::vector<NodeId> out;
  for (const NodeId v : set) {
    for (const NodeId u : g.neighbors(v)) {
      if (!in[u] && !seen[u]) {
        seen[u] = 1;
        out.push_back(u);
      }
    }
  }
  return out;
}

std::size_t node_boundary(const Graph& g, std::span<const NodeId> set) {
  return neighbor_set(g, set).size();
}

std::vector<ExpansionEntry> exact_expansion(
    const Graph& g, const ExactExpansionOptions& opts) {
  const NodeId n = g.num_nodes();
  BFLY_CHECK(n >= 1 && n < 63, "graph too large for exhaustive expansion");
  const std::uint64_t states = 1ull << n;
  BFLY_CHECK(states <= opts.max_states,
             "exhaustive expansion exceeds the configured state limit");
  const std::size_t max_k =
      opts.max_k == 0 ? n : std::min<std::size_t>(opts.max_k, n);

  std::vector<ExpansionEntry> table(max_k + 1);
  std::vector<std::size_t> best_ee(max_k + 1,
                                   std::numeric_limits<std::size_t>::max());
  std::vector<std::size_t> best_ne(max_k + 1,
                                   std::numeric_limits<std::size_t>::max());

  std::vector<std::uint8_t> in(n, 0);
  std::vector<std::uint32_t> nbr_cnt(n, 0);  // edges from v into S
  std::size_t size = 0, cap = 0, ne = 0;

  const auto snapshot = [&] {
    std::vector<NodeId> s;
    s.reserve(size);
    for (NodeId v = 0; v < n; ++v) {
      if (in[v]) s.push_back(v);
    }
    return s;
  };

  const auto record = [&] {
    if (size == 0 || size > max_k) return;
    auto& entry = table[size];
    if (cap < best_ee[size]) {
      best_ee[size] = cap;
      entry.ee = cap;
      if (opts.keep_witnesses) entry.ee_witness = snapshot();
    }
    if (ne < best_ne[size]) {
      best_ne[size] = ne;
      entry.ne = ne;
      if (opts.keep_witnesses) entry.ne_witness = snapshot();
    }
  };

  record();
  for (std::uint64_t i = 1; i < states; ++i) {
    const NodeId v = static_cast<NodeId>(std::countr_zero(i));
    if (!in[v]) {
      // v enters S.
      if (nbr_cnt[v] > 0) --ne;  // v no longer counts as a neighbor
      std::size_t to_s = 0;
      for (const NodeId u : g.neighbors(v)) {
        if (in[u]) {
          ++to_s;
        } else {
          if (nbr_cnt[u] == 0) ++ne;
        }
        ++nbr_cnt[u];
      }
      cap += g.degree(v) - 2 * to_s;
      in[v] = 1;
      ++size;
    } else {
      // v leaves S.
      std::size_t to_s = 0;
      for (const NodeId u : g.neighbors(v)) {
        --nbr_cnt[u];
        if (in[u]) {
          ++to_s;
        } else {
          if (nbr_cnt[u] == 0) --ne;
        }
      }
      cap -= g.degree(v) - 2 * to_s;
      in[v] = 0;
      --size;
      if (nbr_cnt[v] > 0) ++ne;
    }
    record();
  }
  if (checked_build() && opts.keep_witnesses) {
    for (std::size_t k = 1; k <= max_k; ++k) {
      validate_expansion_entry(g, k, table[k]);
    }
  }
  return table;
}

void validate_expansion_entry(const Graph& g, std::size_t k,
                              const ExpansionEntry& entry) {
  const auto check_witness = [&](std::span<const NodeId> witness) {
    BFLY_CHECK(witness.size() == k, "expansion witness has wrong size");
    std::vector<std::uint8_t> seen(g.num_nodes(), 0);
    for (const NodeId v : witness) {
      BFLY_CHECK(v < g.num_nodes(), "expansion witness node out of range");
      BFLY_CHECK(!seen[v], "expansion witness node repeated");
      seen[v] = 1;
    }
  };
  if (!entry.ee_witness.empty() || k == 0) {
    check_witness(entry.ee_witness);
    BFLY_CHECK(edge_boundary(g, entry.ee_witness) == entry.ee,
               "recounted edge boundary does not match recorded EE");
  }
  if (!entry.ne_witness.empty() || k == 0) {
    check_witness(entry.ne_witness);
    BFLY_CHECK(node_boundary(g, entry.ne_witness) == entry.ne,
               "recounted node boundary does not match recorded NE");
  }
}

namespace {

// Incremental k-subset enumerator: maintains membership, edge boundary,
// and node boundary while extending the set one node at a time in
// increasing id order.
class SizeKSearcher {
 public:
  SizeKSearcher(const Graph& g, std::size_t k)
      : g_(g), k_(k), in_(g.num_nodes(), 0), nbr_cnt_(g.num_nodes(), 0) {
    entry_.ee = std::numeric_limits<std::size_t>::max();
    entry_.ne = std::numeric_limits<std::size_t>::max();
  }

  ExpansionEntry run() {
    dfs(0);
    return std::move(entry_);
  }

 private:
  void add(NodeId v) {
    if (nbr_cnt_[v] > 0) --ne_;
    std::size_t to_s = 0;
    for (const NodeId u : g_.neighbors(v)) {
      if (in_[u]) {
        ++to_s;
      } else if (nbr_cnt_[u] == 0) {
        ++ne_;
      }
      ++nbr_cnt_[u];
    }
    cap_ += g_.degree(v) - 2 * to_s;
    in_[v] = 1;
    chosen_.push_back(v);
  }

  void remove(NodeId v) {
    std::size_t to_s = 0;
    for (const NodeId u : g_.neighbors(v)) {
      --nbr_cnt_[u];
      if (in_[u]) {
        ++to_s;
      } else if (nbr_cnt_[u] == 0) {
        --ne_;
      }
    }
    cap_ -= g_.degree(v) - 2 * to_s;
    in_[v] = 0;
    if (nbr_cnt_[v] > 0) ++ne_;
    chosen_.pop_back();
  }

  void dfs(NodeId next) {
    if (chosen_.size() == k_) {
      if (cap_ < entry_.ee) {
        entry_.ee = cap_;
        entry_.ee_witness = chosen_;
      }
      if (ne_ < entry_.ne) {
        entry_.ne = ne_;
        entry_.ne_witness = chosen_;
      }
      return;
    }
    // Not enough nodes left to reach k: prune.
    const std::size_t needed = k_ - chosen_.size();
    if (g_.num_nodes() - next < needed) return;
    for (NodeId v = next; v < g_.num_nodes(); ++v) {
      add(v);
      dfs(v + 1);
      remove(v);
      if (g_.num_nodes() - (v + 1) < needed) break;
    }
  }

  const Graph& g_;
  std::size_t k_;
  std::vector<std::uint8_t> in_;
  std::vector<std::uint32_t> nbr_cnt_;
  std::vector<NodeId> chosen_;
  std::size_t cap_ = 0, ne_ = 0;
  ExpansionEntry entry_;
};

}  // namespace

ExpansionEntry exact_expansion_of_size(const Graph& g, std::size_t k,
                                       double max_subsets) {
  BFLY_CHECK(k >= 1 && k <= g.num_nodes(), "set size out of range");
  BFLY_CHECK(binomial_approx(g.num_nodes(), static_cast<unsigned>(k)) <=
                 max_subsets,
             "C(N, k) exceeds the configured subset limit");
  SizeKSearcher searcher(g, k);
  ExpansionEntry entry = searcher.run();
  if (checked_build()) validate_expansion_entry(g, k, entry);
  return entry;
}

}  // namespace bfly::expansion
