#include "algo/bfs.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace bfly::algo {

namespace {

std::vector<std::uint32_t> bfs_impl(const Graph& g,
                                    std::span<const NodeId> sources,
                                    std::vector<NodeId>* parents) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier;
  if (parents != nullptr) {
    parents->assign(g.num_nodes(), kInvalidNode);
  }
  for (const NodeId s : sources) {
    BFLY_CHECK(s < g.num_nodes(), "BFS source out of range");
    if (dist[s] != 0) {
      dist[s] = 0;
      frontier.push_back(s);
    }
  }
  std::vector<NodeId> next;
  std::uint32_t d = 0;
  while (!frontier.empty()) {
    ++d;
    next.clear();
    for (const NodeId u : frontier) {
      for (const NodeId v : g.neighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = d;
          if (parents != nullptr) (*parents)[v] = u;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

}  // namespace

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src) {
  const NodeId sources[] = {src};
  return bfs_impl(g, sources, nullptr);
}

std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                         std::span<const NodeId> sources) {
  return bfs_impl(g, sources, nullptr);
}

std::uint32_t eccentricity(const Graph& g, NodeId src) {
  const auto dist = bfs_distances(g, src);
  std::uint32_t ecc = 0;
  for (const auto d : dist) {
    if (d == kUnreachable) return kUnreachable;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::vector<NodeId> shortest_path(const Graph& g, NodeId src, NodeId dst) {
  const NodeId sources[] = {src};
  std::vector<NodeId> parents;
  const auto dist = bfs_impl(g, sources, &parents);
  if (dist[dst] == kUnreachable) return {};
  std::vector<NodeId> path;
  for (NodeId v = dst; v != src; v = parents[v]) path.push_back(v);
  path.push_back(src);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace bfly::algo
