#include "algo/diameter.hpp"

#include <atomic>

#include "algo/bfs.hpp"
#include "core/thread_pool.hpp"

namespace bfly::algo {

std::uint32_t diameter(const Graph& g, unsigned num_threads) {
  const NodeId n = g.num_nodes();
  if (n <= 1) return 0;
  std::atomic<std::uint32_t> result{0};
  parallel_for_blocked(
      n,
      [&](std::size_t begin, std::size_t end) {
        std::uint32_t local = 0;
        for (std::size_t v = begin; v < end; ++v) {
          const std::uint32_t ecc =
              eccentricity(g, static_cast<NodeId>(v));
          if (ecc == kUnreachable) {
            result.store(kUnreachable, std::memory_order_relaxed);
            return;
          }
          if (ecc > local) local = ecc;
        }
        std::uint32_t cur = result.load(std::memory_order_relaxed);
        while (cur != kUnreachable && local > cur &&
               !result.compare_exchange_weak(cur, local,
                                             std::memory_order_relaxed)) {
        }
      },
      num_threads);
  return result.load();
}

}  // namespace bfly::algo
