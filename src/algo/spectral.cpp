#include "algo/spectral.hpp"

#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace bfly::algo {

namespace {

void remove_mean(std::vector<double>& x) {
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  for (double& v : x) v -= mean;
}

double normalize(std::vector<double>& x) {
  double norm2 = 0.0;
  for (const double v : x) norm2 += v * v;
  const double norm = std::sqrt(norm2);
  if (norm > 0) {
    for (double& v : x) v /= norm;
  }
  return norm;
}

}  // namespace

double laplacian_quadratic(const Graph& g, const std::vector<double>& x) {
  BFLY_CHECK(x.size() == g.num_nodes(), "vector size mismatch");
  double q = 0.0;
  for (const auto& [u, v] : g.edges()) {
    const double d = x[u] - x[v];
    q += d * d;
  }
  return q;
}

FiedlerResult fiedler_vector(const Graph& g, const FiedlerOptions& opts) {
  const NodeId n = g.num_nodes();
  BFLY_CHECK(n >= 2, "need at least two nodes");

  // Power-iterate on M = c*I - L, whose dominant eigenvector orthogonal to
  // the all-ones vector is the Fiedler vector. c = 2*max_degree bounds the
  // Laplacian spectrum (lambda_max <= 2*max_degree).
  const double c = 2.0 * static_cast<double>(g.max_degree()) + 1.0;

  Rng rng(opts.seed);
  std::vector<double> x(n), y(n);
  for (auto& v : x) v = rng.uniform() - 0.5;
  remove_mean(x);
  normalize(x);

  FiedlerResult res;
  double prev_lambda = 0.0;
  for (std::uint32_t it = 0; it < opts.max_iterations; ++it) {
    if (opts.cancel != nullptr && opts.cancel->stop_requested()) break;
    // y = (c*I - L) x = c*x - (D - A) x
    for (NodeId v = 0; v < n; ++v) {
      y[v] = (c - static_cast<double>(g.degree(v))) * x[v];
    }
    for (const auto& [u, v] : g.edges()) {
      y[u] += x[v];
      y[v] += x[u];
    }
    remove_mean(y);
    normalize(y);
    x.swap(y);
    res.iterations = it + 1;

    if ((it & 15u) == 15u || it + 1 == opts.max_iterations) {
      const double lambda = laplacian_quadratic(g, x);
      if (std::abs(lambda - prev_lambda) < opts.tolerance) {
        prev_lambda = lambda;
        break;
      }
      prev_lambda = lambda;
    }
  }
  res.vector = std::move(x);
  res.eigenvalue = laplacian_quadratic(g, res.vector);
  return res;
}

}  // namespace bfly::algo
