// Exact graph diameter via parallel all-pairs BFS.
//
// Verifies the Section 1.1 facts: diameter(Bn) = 2 log n and
// diameter(Wn) = floor(3 log n / 2).
#pragma once

#include <cstdint>

#include "core/graph.hpp"

namespace bfly::algo {

/// Exact diameter (max over nodes of eccentricity). Returns
/// bfs::kUnreachable-equivalent UINT32_MAX if the graph is disconnected.
/// Runs one BFS per node, blocked over `num_threads` (0 = default).
[[nodiscard]] std::uint32_t diameter(const Graph& g,
                                     unsigned num_threads = 0);

}  // namespace bfly::algo
