#include "algo/subgraph.hpp"

#include "core/error.hpp"

namespace bfly::algo {

InducedSubgraph induced_subgraph(const Graph& g,
                                 std::span<const NodeId> nodes) {
  InducedSubgraph out;
  out.to_original.assign(nodes.begin(), nodes.end());
  out.to_sub.assign(g.num_nodes(), kInvalidNode);
  for (NodeId i = 0; i < out.to_original.size(); ++i) {
    const NodeId v = out.to_original[i];
    BFLY_CHECK(v < g.num_nodes(), "subgraph node out of range");
    BFLY_CHECK(out.to_sub[v] == kInvalidNode, "duplicate subgraph node");
    out.to_sub[v] = i;
  }
  GraphBuilder gb(static_cast<NodeId>(out.to_original.size()));
  for (const auto& [u, v] : g.edges()) {
    if (out.to_sub[u] != kInvalidNode && out.to_sub[v] != kInvalidNode) {
      gb.add_edge(out.to_sub[u], out.to_sub[v]);
    }
  }
  out.graph = std::move(gb).build();
  return out;
}

}  // namespace bfly::algo
