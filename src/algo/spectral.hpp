// Spectral graph machinery: Laplacian quadratic forms and an
// approximation of the Fiedler vector (eigenvector of the second-smallest
// Laplacian eigenvalue) via shifted power iteration with deflation of the
// all-ones vector. Feeds the spectral bisection baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/thread_pool.hpp"

namespace bfly::algo {

struct FiedlerOptions {
  std::uint32_t max_iterations = 2000;
  double tolerance = 1e-9;
  std::uint64_t seed = 0xf1ed1e5u;
  /// Cooperative cancellation, polled once per power iteration. A
  /// cancelled run returns the iterate it had (still unit-norm and
  /// mean-free — usable as a rough split, just not converged).
  const CancelToken* cancel = nullptr;
};

struct FiedlerResult {
  std::vector<double> vector;  ///< unit-norm, orthogonal to all-ones
  double eigenvalue = 0.0;     ///< Rayleigh quotient estimate of lambda_2
  std::uint32_t iterations = 0;
};

/// Approximates the Fiedler vector of g's Laplacian. Requires a connected
/// graph for the eigenvalue to be meaningful, but runs on any input.
[[nodiscard]] FiedlerResult fiedler_vector(const Graph& g,
                                           const FiedlerOptions& opts = {});

/// x^T L x = sum over edges (x_u - x_v)^2.
[[nodiscard]] double laplacian_quadratic(const Graph& g,
                                         const std::vector<double>& x);

}  // namespace bfly::algo
