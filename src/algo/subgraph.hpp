// Induced subgraphs.
#pragma once

#include <span>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::algo {

struct InducedSubgraph {
  Graph graph;
  /// original node id of subgraph node i.
  std::vector<NodeId> to_original;
  /// subgraph id of original node, kInvalidNode if not included.
  std::vector<NodeId> to_sub;
};

/// Subgraph induced by `nodes` (must be distinct). Parallel edges between
/// included endpoints are preserved.
[[nodiscard]] InducedSubgraph induced_subgraph(const Graph& g,
                                               std::span<const NodeId> nodes);

}  // namespace bfly::algo
