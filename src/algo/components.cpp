#include "algo/components.hpp"

#include <limits>

namespace bfly::algo {

std::vector<NodeId> Components::members(std::uint32_t c) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < label.size(); ++v) {
    if (label[v] == c) out.push_back(v);
  }
  return out;
}

std::vector<std::size_t> Components::sizes() const {
  std::vector<std::size_t> s(count, 0);
  for (const auto c : label) ++s[c];
  return s;
}

Components connected_components(const Graph& g) {
  constexpr auto kUnset = std::numeric_limits<std::uint32_t>::max();
  Components comp;
  comp.label.assign(g.num_nodes(), kUnset);
  std::vector<NodeId> stack;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (comp.label[root] != kUnset) continue;
    const std::uint32_t c = comp.count++;
    comp.label[root] = c;
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const NodeId v : g.neighbors(u)) {
        if (comp.label[v] == kUnset) {
          comp.label[v] = c;
          stack.push_back(v);
        }
      }
    }
  }
  return comp;
}

bool is_connected(const Graph& g) {
  return g.num_nodes() <= 1 || connected_components(g).count == 1;
}

}  // namespace bfly::algo
