// Dinic's maximum-flow algorithm on explicit directed flow networks.
//
// Substrate for several of the paper's side results:
//   * the directed input/output bisection ("bandwidth") of [13] quoted in
//     Section 1.2 — a minimum directed cut;
//   * Menger-type counts of edge-disjoint paths (Lemma 2.5/2.8 checks);
//   * the Hong–Kung dominator bound of Section 1.6 — a minimum vertex
//     cut via the standard node-splitting reduction.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::algo {

/// A directed flow network with residual arcs.
class FlowNetwork {
 public:
  explicit FlowNetwork(NodeId num_nodes) : head_(num_nodes, kNoArc) {}

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(head_.size());
  }

  /// Adds a directed arc u -> v with the given capacity (and its residual
  /// reverse arc of capacity 0). Returns the arc index.
  std::uint32_t add_arc(NodeId u, NodeId v, std::int64_t capacity);

  /// Maximum flow from s to t (Dinic). May be called once per network.
  [[nodiscard]] std::int64_t max_flow(NodeId s, NodeId t);

  /// After max_flow: true iff v is reachable from s in the residual
  /// network (i.e. v is on the source side of the minimum cut).
  [[nodiscard]] bool on_source_side(NodeId v) const;

  /// Flow currently on arc `arc` (as returned by add_arc).
  [[nodiscard]] std::int64_t flow_on(std::uint32_t arc) const;

 private:
  static constexpr std::uint32_t kNoArc =
      std::numeric_limits<std::uint32_t>::max();

  struct Arc {
    NodeId to;
    std::uint32_t next;      // next arc out of the same tail
    std::int64_t capacity;   // residual capacity
    std::int64_t original;   // original capacity (for flow_on)
  };

  bool bfs_levels(NodeId s, NodeId t);
  std::int64_t dfs_push(NodeId v, NodeId t, std::int64_t limit);

  std::vector<Arc> arcs_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> iter_;
};

/// Maximum number of pairwise EDGE-disjoint undirected paths between the
/// node sets A and B in g (each undirected edge usable once, in either
/// direction). Standard reduction: each undirected edge becomes two
/// opposite arcs of capacity 1; super-source to A, B to super-sink.
[[nodiscard]] std::int64_t max_edge_disjoint_paths(
    const Graph& g, std::span<const NodeId> from, std::span<const NodeId> to);

/// Maximum number of FULLY vertex-disjoint paths between A and B (every
/// node, endpoints included, used by at most one path). Node-splitting
/// reduction.
[[nodiscard]] std::int64_t max_vertex_disjoint_paths(
    const Graph& g, std::span<const NodeId> from, std::span<const NodeId> to);

struct VertexCut {
  std::int64_t size = 0;
  std::vector<NodeId> nodes;  ///< one minimum cut (every node cuttable)
};

/// Minimum number of nodes whose removal intercepts every path from
/// `sources` to `sinks` — ALL nodes are cuttable, including sources and
/// sinks themselves (so the value is always finite). This is the
/// dominator-set quantity in the Hong–Kung bound the paper cites in
/// Section 1.6: every input-to-S path must pass through the cut.
[[nodiscard]] VertexCut min_vertex_cut(const Graph& g,
                                       std::span<const NodeId> sources,
                                       std::span<const NodeId> sinks);

}  // namespace bfly::algo
