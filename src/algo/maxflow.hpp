// Dinic's maximum-flow algorithm on explicit directed flow networks.
//
// Substrate for several of the paper's side results and for the flow
// certification subsystem (src/cert/):
//   * the directed input/output bisection ("bandwidth") of [13] quoted in
//     Section 1.2 — a minimum directed cut;
//   * Menger-type counts of edge-disjoint paths (Lemma 2.5/2.8 checks);
//   * the Hong–Kung dominator bound of Section 1.6 — a minimum vertex
//     cut via the standard node-splitting reduction;
//   * certified vertex/edge connectivity, the class-wide expansion lower
//     bounds of cert::node_expansion_class_bound, and the witness
//     certificates of cert::certify_edge_boundary.
//
// A FlowNetwork is reusable across queries: max_flow() is re-entrant
// (each call augments from the current residual state), reset() restores
// the original capacities, and set_capacity() re-wires individual arcs
// (typically super-source/super-sink attachments) between queries, so a
// large node-split network is built once and answers many certification
// queries. For dense or mid-sized networks, enable_packed_bfs() switches
// the level phase of Dinic to a word-parallel sweep over packed residual
// adjacency rows (the same Bitset64 machinery as the exact kernels),
// which is what lets certification run on B1024-scale instances.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/bitset64.hpp"
#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::algo {

/// Capacity used for "effectively unbounded" arcs. Far above any flow a
/// unit-capacity reduction can carry, far below the int64 overflow guard.
inline constexpr std::int64_t kUnboundedCapacity = 1ll << 40;

/// A directed flow network with residual arcs.
class FlowNetwork {
 public:
  explicit FlowNetwork(NodeId num_nodes) : head_(num_nodes, kNoArc) {}

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(head_.size());
  }

  [[nodiscard]] std::size_t num_arcs() const noexcept { return arcs_.size(); }

  /// Adds a directed arc u -> v with the given capacity and its residual
  /// reverse arc v -> u with `reverse_capacity` (0 for a purely directed
  /// arc; equal to `capacity` to model one undirected edge as a single
  /// arc pair, which is what the packed-BFS duplicate-pair rule wants).
  /// Returns the arc index; the reverse arc is always at index ^ 1.
  std::uint32_t add_arc(NodeId u, NodeId v, std::int64_t capacity,
                        std::int64_t reverse_capacity = 0);

  /// Maximum flow from s to t (Dinic). Re-entrant: every call augments
  /// from the CURRENT residual state and returns the flow pushed by this
  /// call only — a second call with the same terminals returns 0, and a
  /// call after re-wiring (reset()/set_capacity()) pushes exactly the
  /// increment the new capacities admit. For a fresh computation on a
  /// reused network, call reset() first. Throws PreconditionError if the
  /// accumulated value would overflow int64.
  [[nodiscard]] std::int64_t max_flow(NodeId s, NodeId t);

  /// Restores every arc to its original capacity (all flow erased) and,
  /// when packed BFS is enabled, rebuilds the residual rows. After
  /// reset(), flow_on() is 0 for every arc.
  void reset();

  /// Re-wires one arc: its capacity (and recorded original) becomes
  /// `capacity`; the paired reverse arc is untouched. Only legal while
  /// the arc carries no flow — reset() first when re-wiring between
  /// queries. This is how certification reuses one node-split network
  /// for many source/sink sets.
  void set_capacity(std::uint32_t arc, std::int64_t capacity);

  /// Switches the Dinic level phase to a word-parallel BFS over packed
  /// residual adjacency rows (bit w of row v set iff residual(v->w) > 0;
  /// kept exact under every push, so this is a pure representation
  /// change — identical flows and cuts). Memory: num_nodes()^2 / 8
  /// bytes. Requires that no ordered node pair carries more than one arc
  /// (count both directions of every pair; collapse parallel edges into
  /// capacities first) — checked, throws PreconditionError otherwise.
  void enable_packed_bfs();

  [[nodiscard]] bool packed_bfs_enabled() const noexcept { return packed_; }

  /// After max_flow: true iff v is reachable from s in the residual
  /// network (i.e. v is on the source side of the minimum cut).
  [[nodiscard]] bool on_source_side(NodeId v) const;

  /// Net flow currently on arc `arc` (as returned by add_arc). Negative
  /// when the paired reverse arc carries more flow than this direction
  /// (possible only for arcs created with reverse_capacity > 0).
  [[nodiscard]] std::int64_t flow_on(std::uint32_t arc) const;

 private:
  static constexpr std::uint32_t kNoArc =
      std::numeric_limits<std::uint32_t>::max();
  static constexpr std::uint32_t kUnreached = kNoArc;

  struct Arc {
    NodeId from;
    NodeId to;
    std::uint32_t next;      // next arc out of the same tail
    std::int64_t capacity;   // residual capacity
    std::int64_t original;   // original capacity (for flow_on)
  };

  bool bfs_levels(NodeId s, NodeId t);
  bool bfs_levels_packed(NodeId s, NodeId t);
  std::int64_t dfs_push(NodeId v, NodeId t, std::int64_t limit);
  void rebuild_packed_rows();

  std::vector<Arc> arcs_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> iter_;

  // Packed residual adjacency (enable_packed_bfs). rows_[v] bit w is
  // maintained == (some arc v->w has residual capacity > 0); the
  // duplicate-pair precondition makes that ownership unique.
  bool packed_ = false;
  std::vector<Bitset64> rows_;
  Bitset64 frontier_, next_, visited_;  // BFS scratch, sized on enable
};

/// Maximum number of pairwise EDGE-disjoint undirected paths between the
/// node sets A and B in g (each undirected edge usable once, in either
/// direction). Standard reduction: each undirected edge becomes two
/// opposite arcs of capacity 1; super-source to A, B to super-sink.
[[nodiscard]] std::int64_t max_edge_disjoint_paths(
    const Graph& g, std::span<const NodeId> from, std::span<const NodeId> to);

/// Maximum number of FULLY vertex-disjoint paths between A and B (every
/// node, endpoints included, used by at most one path). Node-splitting
/// reduction.
[[nodiscard]] std::int64_t max_vertex_disjoint_paths(
    const Graph& g, std::span<const NodeId> from, std::span<const NodeId> to);

/// The Hong–Kung node-splitting reduction over g, prebuilt for reuse:
/// node v splits into v_in (= v) and v_out (= n + v) joined by an arc of
/// `split_capacity`; every undirected edge {u, v} (parallel edges
/// collapsed into one arc of unbounded capacity) becomes u_out -> v_in
/// and v_out -> u_in; a super-source (node 2n) and super-sink (2n + 1)
/// are pre-wired to every v_in / from every v_out with capacity 0, so a
/// query toggles exactly the attachments it needs via set_capacity() and
/// resets between queries. With `packed_bfs_node_limit` >= 2n + 2 the
/// packed level phase is enabled (the reduction never produces duplicate
/// ordered pairs).
struct NodeSplitNetwork {
  FlowNetwork net;
  NodeId n = 0;  ///< nodes of the underlying graph

  [[nodiscard]] NodeId in_node(NodeId v) const { return v; }
  [[nodiscard]] NodeId out_node(NodeId v) const { return n + v; }
  [[nodiscard]] NodeId source() const { return 2 * n; }
  [[nodiscard]] NodeId sink() const { return 2 * n + 1; }
  /// Arc v_in -> v_out.
  [[nodiscard]] std::uint32_t split_arc(NodeId v) const { return 2 * v; }
  /// Arc source -> v_in (capacity 0 until a query enables it).
  [[nodiscard]] std::uint32_t source_arc(NodeId v) const {
    return 2 * n + 2 * v;
  }
  /// Arc v_out -> sink (capacity 0 until a query enables it).
  [[nodiscard]] std::uint32_t sink_arc(NodeId v) const {
    return 4 * n + 2 * v;
  }
};

[[nodiscard]] NodeSplitNetwork make_node_split_network(
    const Graph& g, std::int64_t split_capacity = 1,
    NodeId packed_bfs_node_limit = 0);

struct VertexCut {
  std::int64_t size = 0;
  std::vector<NodeId> nodes;  ///< one minimum cut (every node cuttable)
};

/// Minimum number of nodes whose removal intercepts every path from
/// `sources` to `sinks` — ALL nodes are cuttable, including sources and
/// sinks themselves (so the value is always finite). This is the
/// dominator-set quantity in the Hong–Kung bound the paper cites in
/// Section 1.6: every input-to-S path must pass through the cut.
[[nodiscard]] VertexCut min_vertex_cut(const Graph& g,
                                       std::span<const NodeId> sources,
                                       std::span<const NodeId> sinks);

/// Minimum number of OTHER nodes whose removal separates u from v
/// (u, v not cuttable) — the Menger quantity kappa(u, v). u and v must
/// be distinct and non-adjacent, else no such separator exists.
[[nodiscard]] std::int64_t min_vertex_separator(const Graph& g, NodeId u,
                                                NodeId v);

/// Exact vertex connectivity kappa(G), n - 1 for complete graphs, 0 when
/// disconnected. Even's flow algorithm around a minimum-degree pivot p:
/// every minimum separator either avoids p — then it separates p from
/// some non-neighbor, caught by min_vertex_separator(p, u) — or contains
/// p, in which case minimality forces p to have non-adjacent neighbors
/// x, y in two different components, caught by min_vertex_separator(x, y).
/// O(n + deg(p)^2) max-flow calls on ONE reused node-split network.
[[nodiscard]] std::int64_t vertex_connectivity(const Graph& g);

/// Exact edge connectivity lambda(G) (parallel edges counted with
/// multiplicity), 0 when disconnected. n - 1 max-flow calls from a fixed
/// pivot on one reused network: a minimum edge cut separates the pivot
/// from some node on the other side.
[[nodiscard]] std::int64_t edge_connectivity(const Graph& g);

}  // namespace bfly::algo
