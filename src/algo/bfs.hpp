// Breadth-first search primitives.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::algo {

/// Distance value for unreachable nodes.
inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// Hop distances from src to every node (kUnreachable where disconnected).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       NodeId src);

/// Hop distances from the nearest of several sources.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(
    const Graph& g, std::span<const NodeId> sources);

/// Maximum finite distance from src; kUnreachable if any node unreachable.
[[nodiscard]] std::uint32_t eccentricity(const Graph& g, NodeId src);

/// One shortest path from src to dst (inclusive); empty if unreachable.
[[nodiscard]] std::vector<NodeId> shortest_path(const Graph& g, NodeId src,
                                                NodeId dst);

}  // namespace bfly::algo
