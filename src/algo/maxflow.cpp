#include "algo/maxflow.hpp"

#include <algorithm>
#include <queue>

#include "core/error.hpp"

namespace bfly::algo {

std::uint32_t FlowNetwork::add_arc(NodeId u, NodeId v,
                                   std::int64_t capacity) {
  BFLY_CHECK(u < num_nodes() && v < num_nodes(), "arc endpoint range");
  BFLY_CHECK(capacity >= 0, "capacity must be nonnegative");
  const auto fwd = static_cast<std::uint32_t>(arcs_.size());
  arcs_.push_back({v, head_[u], capacity, capacity});
  head_[u] = fwd;
  arcs_.push_back({u, head_[v], 0, 0});
  head_[v] = fwd + 1;
  return fwd;
}

bool FlowNetwork::bfs_levels(NodeId s, NodeId t) {
  level_.assign(num_nodes(), kNoArc);
  std::queue<NodeId> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (std::uint32_t a = head_[v]; a != kNoArc; a = arcs_[a].next) {
      if (arcs_[a].capacity > 0 && level_[arcs_[a].to] == kNoArc) {
        level_[arcs_[a].to] = level_[v] + 1;
        q.push(arcs_[a].to);
      }
    }
  }
  return level_[t] != kNoArc;
}

std::int64_t FlowNetwork::dfs_push(NodeId v, NodeId t, std::int64_t limit) {
  if (v == t) return limit;
  for (std::uint32_t& a = iter_[v]; a != kNoArc; a = arcs_[a].next) {
    Arc& arc = arcs_[a];
    if (arc.capacity > 0 && level_[arc.to] == level_[v] + 1) {
      const std::int64_t pushed =
          dfs_push(arc.to, t, std::min(limit, arc.capacity));
      if (pushed > 0) {
        arc.capacity -= pushed;
        arcs_[a ^ 1u].capacity += pushed;
        return pushed;
      }
    }
  }
  return 0;
}

std::int64_t FlowNetwork::max_flow(NodeId s, NodeId t) {
  BFLY_CHECK(s != t, "source and sink must differ");
  std::int64_t total = 0;
  while (bfs_levels(s, t)) {
    iter_ = head_;
    while (true) {
      const std::int64_t pushed =
          dfs_push(s, t, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

bool FlowNetwork::on_source_side(NodeId v) const {
  BFLY_CHECK(!level_.empty(), "call max_flow first");
  return level_[v] != kNoArc;
}

std::int64_t FlowNetwork::flow_on(std::uint32_t arc) const {
  BFLY_CHECK(arc < arcs_.size(), "arc index out of range");
  return arcs_[arc].original - arcs_[arc].capacity;
}

std::int64_t max_edge_disjoint_paths(const Graph& g,
                                     std::span<const NodeId> from,
                                     std::span<const NodeId> to) {
  const NodeId n = g.num_nodes();
  FlowNetwork net(n + 2);
  const NodeId s = n, t = n + 1;
  // Undirected edge -> one unit of capacity usable in either direction:
  // a pair of opposite unit arcs shares the edge only if flows cancel;
  // with unit capacities, using both directions simultaneously is
  // equivalent (by flow decomposition) to using neither, so the value is
  // the max number of edge-disjoint paths.
  for (const auto& [u, v] : g.edges()) {
    net.add_arc(u, v, 1);
    net.add_arc(v, u, 1);
  }
  for (const NodeId v : from) net.add_arc(s, v, 1ll << 30);
  for (const NodeId v : to) net.add_arc(v, t, 1ll << 30);
  return net.max_flow(s, t);
}

std::int64_t max_vertex_disjoint_paths(const Graph& g,
                                       std::span<const NodeId> from,
                                       std::span<const NodeId> to) {
  const NodeId n = g.num_nodes();
  // Split each node v into v_in (= v) and v_out (= n + v) joined by a
  // unit arc; every node (endpoints included) carries at most one path.
  FlowNetwork net(2 * n + 2);
  const NodeId s = 2 * n, t = 2 * n + 1;
  for (NodeId v = 0; v < n; ++v) net.add_arc(v, n + v, 1);
  for (const auto& [u, v] : g.edges()) {
    net.add_arc(n + u, v, 1ll << 30);
    net.add_arc(n + v, u, 1ll << 30);
  }
  for (const NodeId v : from) net.add_arc(s, v, 1);
  for (const NodeId v : to) net.add_arc(n + v, t, 1);
  return net.max_flow(s, t);
}

VertexCut min_vertex_cut(const Graph& g, std::span<const NodeId> sources,
                         std::span<const NodeId> sinks) {
  const NodeId n = g.num_nodes();
  FlowNetwork net(2 * n + 2);
  const NodeId s = 2 * n, t = 2 * n + 1;
  for (NodeId v = 0; v < n; ++v) net.add_arc(v, n + v, 1);
  for (const auto& [u, v] : g.edges()) {
    net.add_arc(n + u, v, 1ll << 30);
    net.add_arc(n + v, u, 1ll << 30);
  }
  // Sources enter at v_in (the source node itself is cuttable), sinks
  // exit at v_out (likewise cuttable), both with infinite multiplicity.
  for (const NodeId v : sources) net.add_arc(s, v, 1ll << 30);
  for (const NodeId v : sinks) net.add_arc(n + v, t, 1ll << 30);

  VertexCut cut;
  cut.size = net.max_flow(s, t);
  // A node is in the minimum cut iff its split arc crosses the residual
  // reachability boundary.
  for (NodeId v = 0; v < n; ++v) {
    if (net.on_source_side(v) && !net.on_source_side(n + v)) {
      cut.nodes.push_back(v);
    }
  }
  return cut;
}

}  // namespace bfly::algo
