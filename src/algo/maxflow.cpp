#include "algo/maxflow.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "core/error.hpp"

namespace bfly::algo {

std::uint32_t FlowNetwork::add_arc(NodeId u, NodeId v, std::int64_t capacity,
                                   std::int64_t reverse_capacity) {
  BFLY_CHECK(u < num_nodes() && v < num_nodes(), "arc endpoint range");
  BFLY_CHECK(capacity >= 0 && reverse_capacity >= 0,
             "capacity must be nonnegative");
  // Flow pushed forward lands on the reverse residual (and vice versa),
  // so the pair's combined capacity is the largest residual either side
  // can ever reach — cap it below the int64 edge once, here.
  BFLY_CHECK(capacity <=
                 std::numeric_limits<std::int64_t>::max() - reverse_capacity,
             "arc pair capacity overflows int64");
  BFLY_CHECK(!packed_, "add_arc after enable_packed_bfs");
  const auto fwd = static_cast<std::uint32_t>(arcs_.size());
  arcs_.push_back({u, v, head_[u], capacity, capacity});
  head_[u] = fwd;
  arcs_.push_back({v, u, head_[v], reverse_capacity, reverse_capacity});
  head_[v] = fwd + 1;
  return fwd;
}

void FlowNetwork::reset() {
  for (Arc& arc : arcs_) arc.capacity = arc.original;
  if (packed_) rebuild_packed_rows();
}

void FlowNetwork::set_capacity(std::uint32_t arc, std::int64_t capacity) {
  BFLY_CHECK(arc < arcs_.size(), "arc index out of range");
  BFLY_CHECK(capacity >= 0, "capacity must be nonnegative");
  BFLY_CHECK(flow_on(arc) == 0,
             "set_capacity on an arc carrying flow — reset() first");
  BFLY_CHECK(capacity < std::numeric_limits<std::int64_t>::max() -
                            arcs_[arc ^ 1u].original,
             "arc pair capacity overflows int64");
  Arc& a = arcs_[arc];
  a.capacity = a.original = capacity;
  if (packed_) {
    if (capacity > 0) {
      rows_[a.from].set(a.to);
    } else {
      rows_[a.from].reset(a.to);
    }
  }
}

void FlowNetwork::enable_packed_bfs() {
  // Bit (v, w) of the packed rows must be owned by exactly one arc, or a
  // saturated arc could clear a bit another arc still justifies. Reverse
  // arcs claim their pair too — they carry residual capacity.
  std::vector<std::uint64_t> pairs;
  pairs.reserve(arcs_.size());
  for (const Arc& a : arcs_) {
    pairs.push_back((static_cast<std::uint64_t>(a.from) << 32) | a.to);
  }
  std::sort(pairs.begin(), pairs.end());
  BFLY_CHECK(std::adjacent_find(pairs.begin(), pairs.end()) == pairs.end(),
             "packed BFS requires at most one arc per ordered node pair");
  const NodeId n = num_nodes();
  rows_.assign(n, Bitset64(n));
  frontier_ = Bitset64(n);
  next_ = Bitset64(n);
  visited_ = Bitset64(n);
  packed_ = true;
  rebuild_packed_rows();
}

void FlowNetwork::rebuild_packed_rows() {
  for (Bitset64& row : rows_) row.clear();
  for (const Arc& a : arcs_) {
    if (a.capacity > 0) rows_[a.from].set(a.to);
  }
}

bool FlowNetwork::bfs_levels(NodeId s, NodeId t) {
  level_.assign(num_nodes(), kUnreached);
  std::queue<NodeId> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (std::uint32_t a = head_[v]; a != kNoArc; a = arcs_[a].next) {
      if (arcs_[a].capacity > 0 && level_[arcs_[a].to] == kUnreached) {
        level_[arcs_[a].to] = level_[v] + 1;
        q.push(arcs_[a].to);
      }
    }
  }
  return level_[t] != kUnreached;
}

bool FlowNetwork::bfs_levels_packed(NodeId s, NodeId t) {
  level_.assign(num_nodes(), kUnreached);
  visited_.clear();
  frontier_.clear();
  frontier_.set(s);
  visited_.set(s);
  level_[s] = 0;
  std::uint32_t depth = 0;
  // Early exit once t is leveled is sound (the DFS never walks past
  // level(t) toward t) and only ever skipped on the final, failing BFS —
  // exactly the one on_source_side() reads.
  while (level_[t] == kUnreached && frontier_.any()) {
    next_.clear();
    frontier_.for_each_set(
        [&](std::size_t v) { next_.or_assign(rows_[v]); });
    next_.andnot_assign(visited_);
    ++depth;
    next_.for_each_set([&](std::size_t w) {
      level_[w] = depth;
    });
    visited_.or_assign(next_);
    std::swap(frontier_, next_);
  }
  return level_[t] != kUnreached;
}

std::int64_t FlowNetwork::dfs_push(NodeId v, NodeId t, std::int64_t limit) {
  if (v == t) return limit;
  for (std::uint32_t& a = iter_[v]; a != kNoArc; a = arcs_[a].next) {
    Arc& arc = arcs_[a];
    if (arc.capacity > 0 && level_[arc.to] == level_[v] + 1) {
      const std::int64_t pushed =
          dfs_push(arc.to, t, std::min(limit, arc.capacity));
      if (pushed > 0) {
        Arc& rev = arcs_[a ^ 1u];
        arc.capacity -= pushed;
        rev.capacity += pushed;
        if (packed_) {
          if (arc.capacity == 0) rows_[arc.from].reset(arc.to);
          if (rev.capacity == pushed) rows_[rev.from].set(rev.to);
        }
        return pushed;
      }
    }
  }
  return 0;
}

std::int64_t FlowNetwork::max_flow(NodeId s, NodeId t) {
  BFLY_CHECK(s < num_nodes() && t < num_nodes(), "terminal out of range");
  BFLY_CHECK(s != t, "source and sink must differ");
  std::int64_t total = 0;
  while (packed_ ? bfs_levels_packed(s, t) : bfs_levels(s, t)) {
    iter_ = head_;
    std::int64_t phase = 0;
    while (true) {
      const std::int64_t pushed =
          dfs_push(s, t, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      BFLY_CHECK(pushed <= std::numeric_limits<std::int64_t>::max() - total,
                 "maximum flow overflows int64");
      total += pushed;
      phase += pushed;
    }
    // Both level phases are exact residual BFS, so a reachable sink
    // always admits at least one augmentation.
    BFLY_ASSERT_MSG(phase > 0, "level phase pushed no flow");
  }
  return total;
}

bool FlowNetwork::on_source_side(NodeId v) const {
  BFLY_CHECK(!level_.empty(), "call max_flow first");
  return level_[v] != kUnreached;
}

std::int64_t FlowNetwork::flow_on(std::uint32_t arc) const {
  BFLY_CHECK(arc < arcs_.size(), "arc index out of range");
  return arcs_[arc].original - arcs_[arc].capacity;
}

std::int64_t max_edge_disjoint_paths(const Graph& g,
                                     std::span<const NodeId> from,
                                     std::span<const NodeId> to) {
  const NodeId n = g.num_nodes();
  FlowNetwork net(n + 2);
  const NodeId s = n, t = n + 1;
  // Undirected edge -> one unit of capacity usable in either direction:
  // a single arc pair with unit capacity on both sides. Net flow across
  // the pair is at most one unit either way, which (by flow
  // decomposition) is exactly "each edge carries at most one path".
  for (const auto& [u, v] : g.edges()) net.add_arc(u, v, 1, 1);
  for (const NodeId v : from) net.add_arc(s, v, kUnboundedCapacity);
  for (const NodeId v : to) net.add_arc(v, t, kUnboundedCapacity);
  return net.max_flow(s, t);
}

NodeSplitNetwork make_node_split_network(const Graph& g,
                                         std::int64_t split_capacity,
                                         NodeId packed_bfs_node_limit) {
  const NodeId n = g.num_nodes();
  BFLY_CHECK(n >= 1, "node-split network needs a nonempty graph");
  NodeSplitNetwork ns{FlowNetwork(2 * n + 2), n};
  for (NodeId v = 0; v < n; ++v) {
    ns.net.add_arc(ns.in_node(v), ns.out_node(v), split_capacity);
  }
  for (NodeId v = 0; v < n; ++v) ns.net.add_arc(ns.source(), v, 0);
  for (NodeId v = 0; v < n; ++v) ns.net.add_arc(ns.out_node(v), ns.sink(), 0);
  for (NodeId u = 0; u < n; ++u) {
    const auto nb = g.neighbors(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const NodeId v = nb[i];
      if (v <= u) continue;                  // each undirected pair once
      if (i > 0 && nb[i - 1] == v) continue;  // collapse parallel edges
      ns.net.add_arc(ns.out_node(u), ns.in_node(v), kUnboundedCapacity);
      ns.net.add_arc(ns.out_node(v), ns.in_node(u), kUnboundedCapacity);
    }
  }
  if (packed_bfs_node_limit >= 2 * n + 2) ns.net.enable_packed_bfs();
  return ns;
}

std::int64_t max_vertex_disjoint_paths(const Graph& g,
                                       std::span<const NodeId> from,
                                       std::span<const NodeId> to) {
  NodeSplitNetwork ns = make_node_split_network(g, 1);
  // Endpoints enter at v_in / leave at v_out with unit capacity, so every
  // node — endpoints included — carries at most one path.
  for (const NodeId v : from) ns.net.set_capacity(ns.source_arc(v), 1);
  for (const NodeId v : to) ns.net.set_capacity(ns.sink_arc(v), 1);
  return ns.net.max_flow(ns.source(), ns.sink());
}

VertexCut min_vertex_cut(const Graph& g, std::span<const NodeId> sources,
                         std::span<const NodeId> sinks) {
  NodeSplitNetwork ns = make_node_split_network(g, 1);
  // Sources enter at v_in (the source node itself is cuttable), sinks
  // exit at v_out (likewise cuttable), both with infinite multiplicity.
  for (const NodeId v : sources) {
    ns.net.set_capacity(ns.source_arc(v), kUnboundedCapacity);
  }
  for (const NodeId v : sinks) {
    ns.net.set_capacity(ns.sink_arc(v), kUnboundedCapacity);
  }
  VertexCut cut;
  cut.size = ns.net.max_flow(ns.source(), ns.sink());
  // A node is in the minimum cut iff its split arc crosses the residual
  // reachability boundary.
  for (NodeId v = 0; v < ns.n; ++v) {
    if (ns.net.on_source_side(ns.in_node(v)) &&
        !ns.net.on_source_side(ns.out_node(v))) {
      cut.nodes.push_back(v);
    }
  }
  return cut;
}

std::int64_t min_vertex_separator(const Graph& g, NodeId u, NodeId v) {
  BFLY_CHECK(u < g.num_nodes() && v < g.num_nodes() && u != v,
             "separator endpoints must be distinct in-range nodes");
  BFLY_CHECK(!g.has_edge(u, v),
             "adjacent nodes admit no vertex separator");
  NodeSplitNetwork ns = make_node_split_network(g, 1);
  // Starting at u_out and ending at v_in leaves the endpoints' own split
  // arcs off every path, so neither endpoint is cuttable.
  return ns.net.max_flow(ns.out_node(u), ns.in_node(v));
}

std::int64_t vertex_connectivity(const Graph& g) {
  const NodeId n = g.num_nodes();
  BFLY_CHECK(n >= 1, "vertex connectivity of the empty graph is undefined");
  if (n == 1) return 0;
  NodeId pivot = 0;
  for (NodeId v = 1; v < n; ++v) {
    if (g.degree(v) < g.degree(pivot)) pivot = v;
  }
  std::int64_t best = static_cast<std::int64_t>(n) - 1;  // complete graph
  NodeSplitNetwork ns = make_node_split_network(g, 1);
  const auto separator = [&](NodeId a, NodeId b) {
    ns.net.reset();
    return ns.net.max_flow(ns.out_node(a), ns.in_node(b));
  };
  std::vector<bool> closed(n, false);
  closed[pivot] = true;
  std::vector<NodeId> nbrs;
  for (const NodeId w : g.neighbors(pivot)) {
    if (!closed[w]) nbrs.push_back(w);  // dedupes parallel edges
    closed[w] = true;
  }
  for (NodeId u = 0; u < n && best > 0; ++u) {
    if (!closed[u]) best = std::min(best, separator(pivot, u));
  }
  for (std::size_t i = 0; i < nbrs.size() && best > 0; ++i) {
    for (std::size_t j = i + 1; j < nbrs.size() && best > 0; ++j) {
      if (!g.has_edge(nbrs[i], nbrs[j])) {
        best = std::min(best, separator(nbrs[i], nbrs[j]));
      }
    }
  }
  return best;
}

std::int64_t edge_connectivity(const Graph& g) {
  const NodeId n = g.num_nodes();
  BFLY_CHECK(n >= 2, "edge connectivity needs at least two nodes");
  FlowNetwork net(n);
  for (NodeId u = 0; u < n; ++u) {
    const auto nb = g.neighbors(u);
    for (std::size_t i = 0; i < nb.size();) {
      const NodeId v = nb[i];
      std::size_t mult = 1;
      while (i + mult < nb.size() && nb[i + mult] == v) ++mult;
      if (v > u) {
        const auto cap = static_cast<std::int64_t>(mult);
        net.add_arc(u, v, cap, cap);
      }
      i += mult;
    }
  }
  std::int64_t best = kUnboundedCapacity;
  for (NodeId v = 1; v < n && best > 0; ++v) {
    net.reset();
    best = std::min(best, net.max_flow(0, v));
  }
  return best;
}

}  // namespace bfly::algo
