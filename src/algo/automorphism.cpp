#include "algo/automorphism.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <utility>

#include "core/error.hpp"

namespace bfly::algo {

Perm identity_perm(NodeId n) {
  Perm p(n);
  for (NodeId v = 0; v < n; ++v) p[v] = v;
  return p;
}

bool is_permutation(const Perm& p) {
  std::vector<std::uint8_t> hit(p.size(), 0);
  for (const NodeId v : p) {
    if (v >= p.size() || hit[v]) return false;
    hit[v] = 1;
  }
  return true;
}

Perm compose(const Perm& a, const Perm& b) {
  BFLY_CHECK(a.size() == b.size(), "composing permutations of mixed degree");
  const NodeId n = static_cast<NodeId>(a.size());
  Perm c(n);
  for (NodeId v = 0; v < n; ++v) c[v] = a[b[v]];
  return c;
}

Perm inverse(const Perm& p) {
  const NodeId n = static_cast<NodeId>(p.size());
  Perm q(n);
  for (NodeId v = 0; v < n; ++v) q[p[v]] = v;
  return q;
}

bool is_automorphism(const Graph& g, const Perm& p) {
  if (p.size() != g.num_nodes() || !is_permutation(p)) return false;
  // Compare edge MULTISETS, so parallel edges (W4, CCC4, ...) are
  // checked with multiplicity instead of collapsing.
  using E = std::pair<NodeId, NodeId>;
  std::vector<E> original, mapped;
  original.reserve(g.num_edges());
  mapped.reserve(g.num_edges());
  for (const auto& [u, v] : g.edges()) {
    original.emplace_back(std::min(u, v), std::max(u, v));
    const NodeId pu = p[u], pv = p[v];
    mapped.emplace_back(std::min(pu, pv), std::max(pu, pv));
  }
  std::sort(original.begin(), original.end());
  std::sort(mapped.begin(), mapped.end());
  return original == mapped;
}

std::uint64_t apply_to_mask(const Perm& p, std::uint64_t mask) {
  BFLY_ASSERT(p.size() <= 64);
  std::uint64_t out = 0;
  while (mask != 0) {
    const unsigned v = static_cast<unsigned>(std::countr_zero(mask));
    mask &= mask - 1;
    out |= std::uint64_t{1} << p[v];
  }
  return out;
}

PermutationGroup::PermutationGroup(NodeId n, std::vector<Perm> generators)
    : n_(n), gens_(std::move(generators)) {
  for (const Perm& gen : gens_) {
    BFLY_CHECK(gen.size() == n_, "generator degree mismatch");
    BFLY_CHECK(is_permutation(gen), "generator is not a permutation");
  }
}

std::vector<NodeId> PermutationGroup::orbit(NodeId v) const {
  BFLY_CHECK(v < n_, "orbit point out of range");
  std::vector<std::uint8_t> seen(n_, 0);
  std::vector<NodeId> frontier{v}, out{v};
  seen[v] = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    for (const Perm& gen : gens_) {
      const NodeId w = gen[u];
      if (!seen[w]) {
        seen[w] = 1;
        out.push_back(w);
        frontier.push_back(w);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<NodeId>> PermutationGroup::vertex_orbits() const {
  std::vector<std::uint8_t> done(n_, 0);
  std::vector<std::vector<NodeId>> orbits;
  for (NodeId v = 0; v < n_; ++v) {
    if (done[v]) continue;
    auto orb = orbit(v);
    for (const NodeId u : orb) done[u] = 1;
    orbits.push_back(std::move(orb));
  }
  return orbits;
}

std::vector<std::uint64_t> PermutationGroup::mask_orbit(
    std::uint64_t mask) const {
  BFLY_CHECK(n_ <= 64, "mask orbits need degree <= 64");
  std::set<std::uint64_t> seen{mask};
  std::vector<std::uint64_t> frontier{mask};
  while (!frontier.empty()) {
    const std::uint64_t m = frontier.back();
    frontier.pop_back();
    for (const Perm& gen : gens_) {
      const std::uint64_t im = apply_to_mask(gen, m);
      if (seen.insert(im).second) frontier.push_back(im);
    }
  }
  return {seen.begin(), seen.end()};
}

const std::vector<Perm>* PermutationGroup::elements(
    std::size_t max_elements) const {
  if (!elements_.empty()) {
    return elements_.size() <= max_elements ? &elements_ : nullptr;
  }
  if (too_large_) return nullptr;
  // Breadth-first closure: seed with the identity, multiply by every
  // generator until no new element appears (or the cap blows).
  std::set<Perm> seen;
  std::vector<Perm> frontier{identity_perm(n_)};
  seen.insert(frontier.front());
  while (!frontier.empty()) {
    const Perm cur = std::move(frontier.back());
    frontier.pop_back();
    for (const Perm& gen : gens_) {
      Perm next = compose(gen, cur);
      if (seen.size() >= max_elements && !seen.contains(next)) {
        too_large_ = true;
        return nullptr;
      }
      if (seen.insert(next).second) frontier.push_back(std::move(next));
    }
  }
  elements_.assign(seen.begin(), seen.end());
  return &elements_;
}

std::size_t PermutationGroup::order(std::size_t max_elements) const {
  const std::vector<Perm>* elems = elements(max_elements);
  BFLY_CHECK(elems != nullptr, "group order exceeds the enumeration cap");
  return elems->size();
}

std::vector<Perm> PermutationGroup::setwise_stabilizer(
    std::uint64_t mask, std::size_t max_elements) const {
  BFLY_CHECK(n_ <= 64, "setwise stabilizers need degree <= 64");
  const std::vector<Perm>* elems = elements(max_elements);
  BFLY_CHECK(elems != nullptr, "group order exceeds the enumeration cap");
  std::vector<Perm> stab;
  for (const Perm& p : *elems) {
    if (apply_to_mask(p, mask) == mask) stab.push_back(p);
  }
  return stab;
}

}  // namespace bfly::algo
