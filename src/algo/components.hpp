// Connected components.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::algo {

struct Components {
  /// Component label of each node, labels in [0, count), assigned in
  /// order of first appearance by node id.
  std::vector<std::uint32_t> label;
  std::uint32_t count = 0;

  /// Node ids of one component.
  [[nodiscard]] std::vector<NodeId> members(std::uint32_t c) const;

  /// Sizes of all components.
  [[nodiscard]] std::vector<std::size_t> sizes() const;
};

[[nodiscard]] Components connected_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

}  // namespace bfly::algo
