// Graph isomorphism for the structured instances this library manipulates.
//
// Two tools:
//   * wl_certificate: a 1-dimensional Weisfeiler–Leman color-refinement
//     certificate. Equal certificates are necessary for isomorphism and, on
//     the rigid-ish butterfly-family graphs we compare, an effective
//     screen.
//   * are_isomorphic: exact backtracking isomorphism with WL-color pruning;
//     intended for the small components Lemma 2.4 / Lemma 2.11 talk about
//     (tens of nodes).
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"

namespace bfly::algo {

/// Sorted multiset of stable WL colors; equal for isomorphic graphs.
[[nodiscard]] std::vector<std::uint64_t> wl_certificate(const Graph& g);

/// Exact isomorphism test (exponential worst case; use on small graphs).
[[nodiscard]] bool are_isomorphic(const Graph& a, const Graph& b);

}  // namespace bfly::algo
