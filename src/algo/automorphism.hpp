// Permutation groups acting on graph vertices (the symmetry subsystem,
// DESIGN.md §10).
//
// Every butterfly-family network has a large, explicitly known
// automorphism group — column rotations/XORs of Wn and CCCn, the
// (c0, flips) translations and level reversal of Bn, bit permutations
// of Qd, row/column permutations of MOS — and the exact kernels exploit
// it: equivalent branch-and-bound states collapse through a canonical
// transposition table, and the sharded expansion sweep enumerates only
// orbit representatives of its shard prefixes. This module is the
// group-theory substrate: permutation arithmetic, automorphism
// verification, Schreier-style orbit computation on vertices and on
// small (<= 64-node) vertex subsets, and bounded enumeration of the
// full element closure for canonicalization.
//
// A permutation is stored one-line: p[v] is the image of v. Topology
// classes export generator sets (automorphism_generators()); the
// PermutationGroup never needs the graph itself, only its degree.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::algo {

/// One-line permutation: p[v] = image of v.
using Perm = std::vector<NodeId>;

/// The identity on n points.
[[nodiscard]] Perm identity_perm(NodeId n);

/// True iff p is a bijection of [0, p.size()).
[[nodiscard]] bool is_permutation(const Perm& p);

/// (a then b)? No: returns a∘b, i.e. (a∘b)[v] = a[b[v]] — apply b first.
[[nodiscard]] Perm compose(const Perm& a, const Perm& b);

[[nodiscard]] Perm inverse(const Perm& p);

/// True iff p maps the edge multiset of g onto itself. Multigraph-safe:
/// parallel edges are compared with multiplicity, so the check is exact
/// for every graph this library builds (W4/CCC4 included).
[[nodiscard]] bool is_automorphism(const Graph& g, const Perm& p);

/// Applies p to a <= 64-node subset mask: bit v of mask becomes bit
/// p[v] of the result.
[[nodiscard]] std::uint64_t apply_to_mask(const Perm& p, std::uint64_t mask);

/// A finitely generated permutation group on [0, degree). Orbit queries
/// walk the generator closure (Schreier-style breadth-first chase, no
/// element enumeration needed); canonicalization consumers ask for the
/// full element list, which is enumerated once, capped, and cached.
class PermutationGroup {
 public:
  /// Elements beyond this cap mean the group is too large for
  /// element-list canonicalization; orbit queries still work.
  static constexpr std::size_t kDefaultMaxElements = 4096;

  PermutationGroup() = default;

  /// Every generator must be a permutation of [0, n). Checked builds
  /// validate; an empty generator list yields the trivial group.
  PermutationGroup(NodeId n, std::vector<Perm> generators);

  [[nodiscard]] NodeId degree() const noexcept { return n_; }
  [[nodiscard]] const std::vector<Perm>& generators() const noexcept {
    return gens_;
  }

  /// Orbit of vertex v under the group (sorted ascending).
  [[nodiscard]] std::vector<NodeId> orbit(NodeId v) const;

  /// Partition of [0, degree) into orbits, each sorted, ordered by
  /// smallest member.
  [[nodiscard]] std::vector<std::vector<NodeId>> vertex_orbits() const;

  /// Orbit of a <= 64-node subset mask under the group (sorted
  /// ascending as integers). degree() must be <= 64.
  [[nodiscard]] std::vector<std::uint64_t> mask_orbit(
      std::uint64_t mask) const;

  /// The full element list (identity included), enumerated by closure
  /// over the generators and cached. Returns nullptr — without caching
  /// a partial list — when the group has more than max_elements
  /// elements, so callers can degrade to symmetry-off instead of
  /// enumerating a huge group.
  [[nodiscard]] const std::vector<Perm>* elements(
      std::size_t max_elements = kDefaultMaxElements) const;

  /// |G|. Throws PreconditionError when the group exceeds max_elements.
  [[nodiscard]] std::size_t order(
      std::size_t max_elements = kDefaultMaxElements) const;

  /// Every element fixing the subset mask setwise (a subgroup, identity
  /// included). degree() must be <= 64; requires element enumeration,
  /// so the same cap applies (nullptr-style empty result is impossible:
  /// throws PreconditionError when the cap is exceeded).
  [[nodiscard]] std::vector<Perm> setwise_stabilizer(
      std::uint64_t mask,
      std::size_t max_elements = kDefaultMaxElements) const;

 private:
  NodeId n_ = 0;
  std::vector<Perm> gens_;
  // Lazily built element closure; empty until the first elements()
  // call that fits the cap. too_large_ remembers a failed enumeration
  // so repeated calls do not redo the blown-up closure.
  mutable std::vector<Perm> elements_;
  mutable bool too_large_ = false;
};

}  // namespace bfly::algo
