#include "algo/isomorphism.hpp"

#include <algorithm>
#include <map>

#include "core/error.hpp"
#include "core/types.hpp"

namespace bfly::algo {

namespace {

// One refinement round: new color = hash of (old color, sorted multiset of
// neighbor colors). Colors are canonicalized through a map so runs are
// deterministic and comparable across graphs.
std::vector<std::uint64_t> wl_colors(const Graph& g) {
  const NodeId n = g.num_nodes();

  // Initial colors: degrees, canonicalized to 0..classes-1.
  std::vector<std::uint64_t> color(n);
  std::size_t num_classes;
  {
    std::map<std::size_t, std::uint64_t> canon;
    for (NodeId v = 0; v < n; ++v) {
      const auto [it, ins] = canon.try_emplace(
          g.degree(v), static_cast<std::uint64_t>(canon.size()));
      color[v] = it->second;
    }
    num_classes = canon.size();
  }

  std::vector<std::uint64_t> next(n);
  // The class count strictly grows until stable; n rounds suffice.
  for (NodeId round = 0; round < n && num_classes < n; ++round) {
    std::map<std::vector<std::uint64_t>, std::uint64_t> canon;
    std::vector<std::uint64_t> sig;
    for (NodeId v = 0; v < n; ++v) {
      sig.clear();
      sig.push_back(color[v]);
      for (const NodeId u : g.neighbors(v)) sig.push_back(color[u]);
      std::sort(sig.begin() + 1, sig.end());
      const auto [it, inserted] =
          canon.try_emplace(sig, static_cast<std::uint64_t>(canon.size()));
      next[v] = it->second;
    }
    color = next;
    if (canon.size() == num_classes) break;  // refinement is stable
    num_classes = canon.size();
  }
  return color;
}

bool extend(const Graph& a, const Graph& b,
            const std::vector<std::uint64_t>& ca,
            const std::vector<std::uint64_t>& cb, std::vector<NodeId>& map_ab,
            std::vector<NodeId>& map_ba, NodeId next) {
  const NodeId n = a.num_nodes();
  if (next == n) return true;
  for (NodeId cand = 0; cand < n; ++cand) {
    if (map_ba[cand] != kInvalidNode) continue;
    if (cb[cand] != ca[next]) continue;
    // Consistency: every already-mapped neighbor of `next` must map to a
    // neighbor of `cand` with matching multiplicity, and vice versa.
    bool ok = a.degree(next) == b.degree(cand);
    if (ok) {
      for (const NodeId u : a.neighbors(next)) {
        if (map_ab[u] != kInvalidNode &&
            a.edge_multiplicity(next, u) !=
                b.edge_multiplicity(cand, map_ab[u])) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      for (const NodeId w : b.neighbors(cand)) {
        if (map_ba[w] != kInvalidNode &&
            b.edge_multiplicity(cand, w) !=
                a.edge_multiplicity(next, map_ba[w])) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;
    map_ab[next] = cand;
    map_ba[cand] = next;
    if (extend(a, b, ca, cb, map_ab, map_ba, next + 1)) return true;
    map_ab[next] = kInvalidNode;
    map_ba[cand] = kInvalidNode;
  }
  return false;
}

}  // namespace

std::vector<std::uint64_t> wl_certificate(const Graph& g) {
  auto colors = wl_colors(g);
  std::sort(colors.begin(), colors.end());
  return colors;
}

bool are_isomorphic(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  if (a.num_nodes() == 0) return true;
  const auto ca = wl_colors(a);
  const auto cb = wl_colors(b);
  if (wl_certificate(a) != wl_certificate(b)) return false;
  std::vector<NodeId> map_ab(a.num_nodes(), kInvalidNode);
  std::vector<NodeId> map_ba(b.num_nodes(), kInvalidNode);
  return extend(a, b, ca, cb, map_ab, map_ba, 0);
}

}  // namespace bfly::algo
