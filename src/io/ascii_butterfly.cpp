#include "io/ascii_butterfly.hpp"

#include <sstream>

namespace bfly::io {

namespace {

std::string column_bits(std::uint32_t w, std::uint32_t d) {
  std::string s(d, '0');
  for (std::uint32_t p = 0; p < d; ++p) {
    if ((w >> (d - 1 - p)) & 1u) s[p] = '1';
  }
  return s;
}

}  // namespace

std::string render_butterfly_ascii(const topo::Butterfly& bf) {
  const std::uint32_t n = bf.n();
  const std::uint32_t d = bf.dims();
  const std::uint32_t cell = d + 2;  // bit string + spacing
  std::ostringstream os;

  os << "column";
  for (std::uint32_t w = 0; w < n; ++w) {
    std::string bits = column_bits(w, d);
    os << ' ' << bits;
    for (std::uint32_t p = d; p + 1 < cell; ++p) os << ' ';
  }
  os << "\nlevel\n";

  for (std::uint32_t lvl = 0; lvl <= d; ++lvl) {
    os << "  " << lvl << "   ";
    for (std::uint32_t w = 0; w < n; ++w) {
      os << " o";
      for (std::uint32_t p = 1; p + 1 < cell; ++p) os << ' ';
    }
    os << '\n';
    if (lvl == d) break;
    // Sketch the boundary: straight edges everywhere; cross edges pair
    // columns differing in paper bit position lvl+1.
    const std::uint32_t mask = bf.cross_mask(lvl);
    os << "      ";
    for (std::uint32_t w = 0; w < n; ++w) {
      os << ((w & mask) ? " \\" : " |");
      for (std::uint32_t p = 1; p + 1 < cell; ++p) os << ' ';
    }
    os << "   (cross edges flip bit " << (lvl + 1) << ", span "
       << (mask) << " columns)\n";
  }
  return os.str();
}

}  // namespace bfly::io
