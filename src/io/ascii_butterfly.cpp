#include "io/ascii_butterfly.hpp"

#include <sstream>
#include <vector>

#include "topology/labels.hpp"

namespace bfly::io {

namespace {

std::string column_bits(std::uint32_t w, std::uint32_t d) {
  std::string s(d, '0');
  for (std::uint32_t p = 0; p < d; ++p) {
    if ((w >> (d - 1 - p)) & 1u) s[p] = '1';
  }
  return s;
}

}  // namespace

std::string render_butterfly_ascii(const topo::Butterfly& bf) {
  const std::uint32_t n = bf.n();
  const std::uint32_t d = bf.dims();
  const std::uint32_t cell = d + 2;  // bit string + spacing
  std::ostringstream os;

  os << "column";
  for (std::uint32_t w = 0; w < n; ++w) {
    std::string bits = column_bits(w, d);
    os << ' ' << bits;
    for (std::uint32_t p = d; p + 1 < cell; ++p) os << ' ';
  }
  os << "\nlevel\n";

  for (std::uint32_t lvl = 0; lvl <= d; ++lvl) {
    os << "  " << lvl << "   ";
    for (std::uint32_t w = 0; w < n; ++w) {
      os << " o";
      for (std::uint32_t p = 1; p + 1 < cell; ++p) os << ' ';
    }
    os << '\n';
    if (lvl == d) break;
    // Sketch the boundary: straight edges everywhere; cross edges pair
    // columns differing in paper bit position lvl+1.
    const std::uint32_t mask = bf.cross_mask(lvl);
    os << "      ";
    for (std::uint32_t w = 0; w < n; ++w) {
      os << ((w & mask) ? " \\" : " |");
      for (std::uint32_t p = 1; p + 1 < cell; ++p) os << ' ';
    }
    os << "   (cross edges flip bit " << (lvl + 1) << ", span "
       << (mask) << " columns)\n";
  }
  return os.str();
}

namespace {

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& msg) {
  std::ostringstream os;
  os << "butterfly ASCII parse error at line " << (line_no + 1) << ": "
     << msg;
  throw ParseError(os.str());
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> toks;
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

/// Parses a decimal token (optionally with one trailing ',') into a
/// bounded unsigned value; returns false on anything else.
bool parse_decimal(std::string tok, std::uint64_t limit,
                   std::uint64_t& out) {
  if (!tok.empty() && tok.back() == ',') tok.pop_back();
  if (tok.empty() || tok.size() > 10) return false;
  std::uint64_t v = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > limit) return false;
  }
  out = v;
  return true;
}

}  // namespace

AsciiButterflyInfo parse_butterfly_ascii(const std::string& text) {
  std::vector<std::string> lines;
  {
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) lines.push_back(line);
  }
  std::size_t ln = 0;
  const auto line_tokens = [&]() -> std::vector<std::string> {
    if (ln >= lines.size()) parse_fail(ln, "unexpected end of input");
    return tokens_of(lines[ln]);
  };

  // Header: "column" followed by the n column labels as d-bit strings
  // that must enumerate 0..n-1 in increasing order.
  const auto header = line_tokens();
  if (header.empty() || header[0] != "column") {
    parse_fail(ln, "expected 'column' header");
  }
  const std::size_t n_cols = header.size() - 1;
  if (n_cols == 0) parse_fail(ln, "no column labels");
  const std::size_t d = header[1].size();
  if (d == 0 || d > 24) parse_fail(ln, "column label width out of range");
  if (n_cols != (std::size_t{1} << d)) {
    parse_fail(ln, "column count is not 2^width");
  }
  for (std::size_t w = 0; w < n_cols; ++w) {
    const std::string& bits = header[w + 1];
    if (bits.size() != d) parse_fail(ln, "ragged column label widths");
    std::uint32_t value = 0;
    for (const char c : bits) {
      if (c != '0' && c != '1') parse_fail(ln, "non-binary column label");
      value = (value << 1) | static_cast<std::uint32_t>(c - '0');
    }
    if (value != w) parse_fail(ln, "column labels must enumerate 0..n-1");
  }
  ++ln;

  // "level" separator.
  const auto sep = line_tokens();
  if (sep.size() != 1 || sep[0] != "level") {
    parse_fail(ln, "expected 'level' separator");
  }
  ++ln;

  const auto dims = static_cast<std::uint32_t>(d);
  const auto n = static_cast<std::uint32_t>(n_cols);
  for (std::uint32_t lvl = 0; lvl <= dims; ++lvl) {
    // Node row: the level number followed by one 'o' per column.
    const auto row = line_tokens();
    if (row.size() != n_cols + 1) {
      parse_fail(ln, "node row has wrong column count");
    }
    std::uint64_t declared = 0;
    if (!parse_decimal(row[0], dims, declared) || declared != lvl) {
      parse_fail(ln, "node row declares the wrong level");
    }
    for (std::size_t i = 1; i < row.size(); ++i) {
      if (row[i] != "o") parse_fail(ln, "node row must contain 'o' marks");
    }
    ++ln;
    if (lvl == dims) break;

    // Boundary row: n cross markers then the
    // "(cross edges flip bit K, span M columns)" trailer.
    const auto edge = line_tokens();
    if (edge.size() != n_cols + 8) {
      parse_fail(ln, "boundary row has wrong token count");
    }
    const std::uint32_t mask = topo::bit_mask(dims, lvl + 1);
    for (std::uint32_t w = 0; w < n; ++w) {
      const std::string& mark = edge[w];
      const bool crossing = (w & mask) != 0;
      if (mark != (crossing ? "\\" : "|")) {
        parse_fail(ln, "cross marker does not match the boundary's mask");
      }
    }
    if (edge[n_cols] != "(cross" || edge[n_cols + 1] != "edges" ||
        edge[n_cols + 2] != "flip" || edge[n_cols + 3] != "bit" ||
        edge[n_cols + 5] != "span" || edge[n_cols + 7] != "columns)") {
      parse_fail(ln, "malformed boundary trailer");
    }
    std::uint64_t bit_pos = 0, span = 0;
    if (!parse_decimal(edge[n_cols + 4], dims, bit_pos) ||
        bit_pos != lvl + 1) {
      parse_fail(ln, "boundary trailer declares the wrong bit position");
    }
    if (!parse_decimal(edge[n_cols + 6], n, span) || span != mask) {
      parse_fail(ln, "boundary trailer declares the wrong span");
    }
    ++ln;
  }
  // Anything after the last node row other than blank lines is noise.
  for (; ln < lines.size(); ++ln) {
    if (!tokens_of(lines[ln]).empty()) {
      parse_fail(ln, "trailing input after the last level");
    }
  }
  return AsciiButterflyInfo{n, dims};
}

}  // namespace bfly::io
