#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/error.hpp"

namespace bfly::io {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  BFLY_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  BFLY_CHECK(cells.size() == headers_.size(),
             "row width must match header count");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace bfly::io
