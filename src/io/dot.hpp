// Graphviz DOT export.
#pragma once

#include <functional>
#include <ostream>
#include <string>

#include "core/graph.hpp"

namespace bfly::io {

struct DotOptions {
  std::string graph_name = "G";
  /// Optional node labeler; defaults to the numeric id.
  std::function<std::string(NodeId)> label;
  /// Optional per-node attribute string, e.g. "color=red".
  std::function<std::string(NodeId)> node_attrs;
};

/// Writes the graph in undirected DOT format.
void write_dot(std::ostream& os, const Graph& g, const DotOptions& opts = {});

}  // namespace bfly::io
