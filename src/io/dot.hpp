// Graphviz DOT export and (restricted) import.
//
// The writer emits plain undirected DOT. The reader is the library's
// untrusted-input surface: it accepts the dialect the writer produces —
// `graph NAME { node and edge statements }` with optional attribute
// lists, quoted identifiers, and `//`/`#` comments — and throws
// ParseError (a PreconditionError) on anything malformed instead of
// crashing or fabricating a graph. fuzz/fuzz_dot.cpp hammers exactly
// this contract.
#pragma once

#include <cstddef>
#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/graph.hpp"

namespace bfly::io {

struct DotOptions {
  std::string graph_name = "G";
  /// Optional node labeler; defaults to the numeric id.
  std::function<std::string(NodeId)> label;
  /// Optional per-node attribute string, e.g. "color=red".
  std::function<std::string(NodeId)> node_attrs;
};

/// Writes the graph in undirected DOT format.
void write_dot(std::ostream& os, const Graph& g, const DotOptions& opts = {});

/// Thrown by the DOT/ASCII readers on malformed input.
class ParseError : public PreconditionError {
 public:
  explicit ParseError(const std::string& what) : PreconditionError(what) {}
};

/// The result of parsing a DOT document: the graph, its name, and each
/// node's DOT id (in the order node ids were assigned — first appearance).
struct ParsedDot {
  std::string name;
  Graph graph;
  std::vector<std::string> node_names;
};

struct DotReadOptions {
  /// Hard caps against adversarial inputs: parsing throws ParseError when
  /// a document declares more nodes/edges than this.
  std::size_t max_nodes = 1u << 22;
  std::size_t max_edges = 1u << 24;
};

/// Parses an undirected DOT document (the dialect write_dot emits: node
/// statements, `a -- b` edge statements, attribute lists, quoted strings,
/// `//` and `#` comments). Node ids are assigned in order of first
/// appearance. Throws ParseError on malformed input, including self
/// loops, directed edges, and cap violations; never exhibits UB on any
/// byte sequence.
[[nodiscard]] ParsedDot read_dot(std::istream& is,
                                 const DotReadOptions& opts = {});

/// Convenience overload for in-memory documents (fuzzing, tests).
[[nodiscard]] ParsedDot read_dot_string(const std::string& text,
                                        const DotReadOptions& opts = {});

}  // namespace bfly::io
