#include "io/dot.hpp"

namespace bfly::io {

void write_dot(std::ostream& os, const Graph& g, const DotOptions& opts) {
  os << "graph " << opts.graph_name << " {\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v;
    os << " [";
    if (opts.label) {
      os << "label=\"" << opts.label(v) << "\"";
    } else {
      os << "label=\"" << v << "\"";
    }
    if (opts.node_attrs) {
      const std::string extra = opts.node_attrs(v);
      if (!extra.empty()) os << ", " << extra;
    }
    os << "];\n";
  }
  for (const auto& [u, v] : g.edges()) {
    os << "  n" << u << " -- n" << v << ";\n";
  }
  os << "}\n";
}

}  // namespace bfly::io
