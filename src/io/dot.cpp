#include "io/dot.hpp"

#include <cctype>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace bfly::io {

void write_dot(std::ostream& os, const Graph& g, const DotOptions& opts) {
  os << "graph " << opts.graph_name << " {\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v;
    os << " [";
    if (opts.label) {
      os << "label=\"" << opts.label(v) << "\"";
    } else {
      os << "label=\"" << v << "\"";
    }
    if (opts.node_attrs) {
      const std::string extra = opts.node_attrs(v);
      if (!extra.empty()) os << ", " << extra;
    }
    os << "];\n";
  }
  for (const auto& [u, v] : g.edges()) {
    os << "  n" << u << " -- n" << v << ";\n";
  }
  os << "}\n";
}

namespace {

// Hand-rolled tokenizer/recursive-descent parser. Every path through it
// is bounds-checked: the fuzz harness feeds it arbitrary bytes and
// expects either a ParsedDot or a ParseError, never UB.
class DotParser {
 public:
  DotParser(std::string text, const DotReadOptions& opts)
      : text_(std::move(text)), opts_(opts) {}

  ParsedDot run() {
    ParsedDot out;
    expect_keyword("graph");
    // Optional graph name (identifier or quoted string).
    Token t = next();
    if (t.kind == Token::kIdent || t.kind == Token::kString) {
      out.name = t.text;
      t = next();
    }
    if (t.kind != Token::kLBrace) fail("expected '{'", t);

    std::vector<std::pair<NodeId, NodeId>> edges;
    for (;;) {
      t = next();
      if (t.kind == Token::kRBrace) break;
      if (t.kind == Token::kEnd) fail("unterminated graph body", t);
      if (t.kind == Token::kSemi) continue;  // empty statement
      if (t.kind != Token::kIdent && t.kind != Token::kString) {
        fail("expected a node id", t);
      }
      const NodeId u = intern(t.text);
      Token after = next();
      if (after.kind == Token::kEdgeOp) {
        // Edge chain: a -- b [-- c ...] [attrs] ;
        NodeId prev = u;
        for (;;) {
          Token rhs = next();
          if (rhs.kind != Token::kIdent && rhs.kind != Token::kString) {
            fail("expected a node id after '--'", rhs);
          }
          const NodeId v = intern(rhs.text);
          if (prev == v) fail("self loops are not supported", rhs);
          edges.emplace_back(prev, v);
          if (edges.size() > opts_.max_edges) {
            fail("edge count exceeds the configured cap", rhs);
          }
          prev = v;
          after = next();
          if (after.kind != Token::kEdgeOp) break;
        }
      }
      if (after.kind == Token::kLBracket) {
        skip_attr_list();
        after = next();
      }
      if (after.kind != Token::kSemi) {
        fail("expected ';' to end the statement", after);
      }
    }
    t = next();
    if (t.kind != Token::kEnd) fail("trailing input after '}'", t);

    GraphBuilder gb(static_cast<NodeId>(out_names_.size()));
    for (const auto& [a, b] : edges) gb.add_edge(a, b);
    out.graph = std::move(gb).build();
    out.node_names = std::move(out_names_);
    return out;
  }

 private:
  struct Token {
    enum Kind {
      kIdent,
      kString,
      kLBrace,
      kRBrace,
      kLBracket,
      kRBracket,
      kSemi,
      kEdgeOp,  // --
      kEnd,
    };
    Kind kind = kEnd;
    std::string text;
    std::size_t offset = 0;
  };

  [[noreturn]] void fail(const std::string& msg, const Token& at) const {
    std::ostringstream os;
    os << "DOT parse error at byte " << at.offset << ": " << msg;
    if (!at.text.empty()) os << " (got '" << at.text << "')";
    throw ParseError(os.str());
  }

  void skip_space() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Token next() {
    skip_space();
    Token t;
    t.offset = pos_;
    if (pos_ >= text_.size()) return t;  // kEnd
    const char c = text_[pos_];
    if (c == '{' || c == '}' || c == '[' || c == ']' || c == ';') {
      ++pos_;
      t.kind = c == '{'   ? Token::kLBrace
               : c == '}' ? Token::kRBrace
               : c == '[' ? Token::kLBracket
               : c == ']' ? Token::kRBracket
                          : Token::kSemi;
      t.text = c;
      return t;
    }
    if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
      pos_ += 2;
      t.kind = Token::kEdgeOp;
      t.text = "--";
      return t;
    }
    if (c == '"') {
      ++pos_;
      t.kind = Token::kString;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        t.text += text_[pos_++];
      }
      if (pos_ >= text_.size()) fail("unterminated string literal", t);
      ++pos_;  // closing quote
      return t;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
        c == '.') {
      t.kind = Token::kIdent;
      while (pos_ < text_.size()) {
        const char d = text_[pos_];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
            d == '.') {
          t.text += d;
          ++pos_;
        } else {
          break;
        }
      }
      return t;
    }
    t.text = c;
    fail("unexpected character", t);
  }

  void expect_keyword(const std::string& kw) {
    const Token t = next();
    if (t.kind != Token::kIdent || t.text != kw) {
      fail("expected keyword '" + kw + "'", t);
    }
  }

  // Consumes a [name=value, ...] attribute list; the '[' has been read.
  // Content is skipped as raw text (respecting quoted strings) — the
  // reader only cares about graph structure, not attributes.
  void skip_attr_list() {
    Token at;
    at.offset = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ']') {
        ++pos_;
        return;
      }
      if (c == '"') {
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
          if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
          ++pos_;
        }
        if (pos_ >= text_.size()) fail("unterminated string literal", at);
      }
      ++pos_;
    }
    fail("unterminated attribute list", at);
  }

  NodeId intern(const std::string& name) {
    const auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    if (out_names_.size() >= opts_.max_nodes) {
      Token t;
      t.offset = pos_;
      fail("node count exceeds the configured cap", t);
    }
    const NodeId id = static_cast<NodeId>(out_names_.size());
    ids_.emplace(name, id);
    out_names_.push_back(name);
    return id;
  }

  std::string text_;
  DotReadOptions opts_;
  std::size_t pos_ = 0;
  std::unordered_map<std::string, NodeId> ids_;
  std::vector<std::string> out_names_;
};

}  // namespace

ParsedDot read_dot_string(const std::string& text,
                          const DotReadOptions& opts) {
  DotParser parser(text, opts);
  ParsedDot out = parser.run();
  if (checked_build()) out.graph.validate();
  return out;
}

ParsedDot read_dot(std::istream& is, const DotReadOptions& opts) {
  std::ostringstream buf;
  buf << is.rdbuf();
  return read_dot_string(buf.str(), opts);
}

}  // namespace bfly::io
