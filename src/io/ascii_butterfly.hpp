// ASCII rendering of a butterfly network in the style of the paper's
// Figure 1 (levels as rows, columns as bit strings, straight and cross
// edges sketched between adjacent levels) — and the inverse parser.
//
// The parser is an untrusted-input surface: it re-derives (n, dims) from
// a rendering and cross-checks every structural claim the drawing makes
// (column labels enumerate 0..n-1 in order, one node row per level, each
// boundary's cross markers match the declared bit position and span).
// Malformed input throws ParseError; no byte sequence causes UB.
// fuzz/fuzz_ascii_butterfly.cpp hammers exactly this contract.
#pragma once

#include <cstdint>
#include <string>

#include "io/dot.hpp"  // ParseError
#include "topology/butterfly.hpp"

namespace bfly::io {

/// Multi-line drawing of Bn (readable up to n = 16 or so).
[[nodiscard]] std::string render_butterfly_ascii(const topo::Butterfly& bf);

/// What a butterfly drawing declares about its network.
struct AsciiButterflyInfo {
  std::uint32_t n = 0;     ///< columns (inputs)
  std::uint32_t dims = 0;  ///< log2 n
};

/// Parses a render_butterfly_ascii drawing back into (n, dims),
/// validating the full structure. Throws ParseError on malformed or
/// internally inconsistent input. Round-trip guarantee:
/// parse_butterfly_ascii(render_butterfly_ascii(bf)) == {bf.n(), bf.dims()}.
[[nodiscard]] AsciiButterflyInfo parse_butterfly_ascii(
    const std::string& text);

}  // namespace bfly::io
