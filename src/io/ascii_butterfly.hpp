// ASCII rendering of a butterfly network in the style of the paper's
// Figure 1: levels as rows, columns as bit strings, with straight and
// cross edges sketched between adjacent levels.
#pragma once

#include <string>

#include "topology/butterfly.hpp"

namespace bfly::io {

/// Multi-line drawing of Bn (readable up to n = 16 or so).
[[nodiscard]] std::string render_butterfly_ascii(const topo::Butterfly& bf);

}  // namespace bfly::io
