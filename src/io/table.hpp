// Aligned plain-text table printer used by the bench harness to emit the
// paper-vs-measured rows, plus CSV output for downstream plotting.
#pragma once

#include <cstddef>
#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace bfly::io {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with operator<<.
  template <typename... Ts>
  void add(const Ts&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(cells));
    (row.push_back(to_cell(cells)), ...);
    add_row(std::move(row));
  }

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
[[nodiscard]] std::string fmt(double v, int precision = 4);

}  // namespace bfly::io
