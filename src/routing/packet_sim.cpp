#include "routing/packet_sim.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "core/error.hpp"

namespace bfly::routing {

namespace {

std::uint64_t dir_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

SimResult simulate_store_and_forward(
    const Graph& g, const std::vector<std::vector<NodeId>>& paths) {
  SimResult res;

  struct Pkt {
    std::uint32_t id;
    std::size_t pos;  // index of current node within its path
  };
  std::unordered_map<std::uint64_t, std::deque<Pkt>> queues;

  // Validate paths, tally static link loads, and enqueue first hops.
  std::unordered_map<std::uint64_t, std::size_t> link_load;
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    const auto& path = paths[p];
    BFLY_CHECK(!path.empty(), "packet path must be nonempty");
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      BFLY_CHECK(g.has_edge(path[i], path[i + 1]),
                 "packet path step is not an edge");
      const std::size_t load = ++link_load[dir_key(path[i], path[i + 1])];
      res.max_link_load = std::max(res.max_link_load, load);
    }
    if (path.size() == 1) {
      ++res.delivered;
    } else {
      queues[dir_key(path[0], path[1])].push_back({p, 0});
    }
  }

  std::uint32_t t = 0;
  while (!queues.empty()) {
    ++t;
    // Phase 1: each nonempty directed link sends its head packet.
    std::vector<Pkt> arrivals;
    arrivals.reserve(queues.size());
    for (auto it = queues.begin(); it != queues.end();) {
      auto& q = it->second;
      res.max_queue = std::max(res.max_queue, q.size());
      arrivals.push_back(q.front());
      q.pop_front();
      if (q.empty()) {
        it = queues.erase(it);
      } else {
        ++it;
      }
    }
    // Phase 2: arrivals advance to their next link (or finish). The
    // queue map hands us the arrivals in unordered_map iteration order,
    // which varies across libraries and runs; sorting by packet id makes
    // same-step same-link enqueues — and therefore makespan — a pure
    // function of the input paths. SimEngine reproduces exactly this
    // tie-break (phase B admits in packet-id order per target queue).
    std::sort(arrivals.begin(), arrivals.end(),
              [](const Pkt& a, const Pkt& b) { return a.id < b.id; });
    for (Pkt pkt : arrivals) {
      const auto& path = paths[pkt.id];
      ++pkt.pos;
      if (pkt.pos + 1 >= path.size()) {
        ++res.delivered;
        res.makespan = t;
      } else {
        queues[dir_key(path[pkt.pos], path[pkt.pos + 1])].push_back(pkt);
      }
    }
  }
  return res;
}

}  // namespace bfly::routing
