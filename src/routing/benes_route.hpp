// Waksman's looping algorithm: routes any permutation of the n columns
// through the Beneš network with node-disjoint (hence edge-disjoint)
// paths — the constructive content of the rearrangeability fact behind
// the paper's Lemma 2.5 and the compactness argument of Lemma 2.8.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "topology/benes.hpp"

namespace bfly::routing {

struct BenesRouting {
  /// paths[i] runs from input column i (level 0) to output column
  /// perm[i] (level 2d), one node per level.
  std::vector<std::vector<NodeId>> paths;
};

/// Routes the permutation (perm must be a bijection on [0, n)). The
/// returned paths visit exactly one node per level and are pairwise
/// node-disjoint on every level.
[[nodiscard]] BenesRouting route_permutation(
    const topo::Benes& benes, std::span<const std::uint32_t> perm);

/// Full rearrangeability (the form Lemma 2.5 needs): every input node
/// carries TWO ports (port p enters node p/2) and every output node two
/// ports; `port_perm` is a bijection on [0, 2n). Returns 2n paths, one
/// per input port, pairwise EDGE-disjoint, with every node carrying at
/// most two paths (its two wire slots).
[[nodiscard]] BenesRouting route_two_port_permutation(
    const topo::Benes& benes, std::span<const std::uint32_t> port_perm);

}  // namespace bfly::routing
