#include "routing/rearrange_certificate.hpp"

#include <algorithm>
#include <set>

#include "core/error.hpp"
#include "core/partition.hpp"
#include "embed/factory.hpp"
#include "routing/benes_route.hpp"
#include "topology/benes.hpp"

namespace bfly::routing {

namespace {

// Stitches a guest (Beneš) path through the folded embedding into a
// butterfly path.
std::vector<NodeId> fold_path(const embed::EmbeddingCase& fold,
                              const std::vector<NodeId>& gpath) {
  std::vector<NodeId> hpath;
  hpath.push_back(fold.emb.node_map[gpath.front()]);
  for (std::size_t i = 0; i + 1 < gpath.size(); ++i) {
    const NodeId a = gpath[i], b = gpath[i + 1];
    EdgeId ge = kInvalidEdge;
    const auto nbrs = fold.guest.neighbors(a);
    const auto eids = fold.guest.incident_edges(a);
    for (std::size_t x = 0; x < nbrs.size(); ++x) {
      if (nbrs[x] == b) {
        ge = eids[x];
        break;
      }
    }
    BFLY_CHECK(ge != kInvalidEdge, "guest path step is not a guest edge");
    auto seg = fold.emb.paths[ge];
    if (seg.front() != hpath.back()) std::reverse(seg.begin(), seg.end());
    BFLY_CHECK(seg.front() == hpath.back(), "segment does not chain");
    hpath.insert(hpath.end(), seg.begin() + 1, seg.end());
  }
  return hpath;
}

}  // namespace

std::vector<std::vector<NodeId>> lemma25_paths(
    const topo::Butterfly& bf, std::span<const std::uint32_t> port_perm) {
  const std::uint32_t n = bf.n();
  BFLY_CHECK(n >= 4, "need n >= 4 for the folded Benes");
  BFLY_CHECK(port_perm.size() == n, "port bijection must have size n");

  const topo::Benes benes(n / 2);
  const auto routing = route_two_port_permutation(benes, port_perm);
  const auto fold = embed::benes_into_bn(bf);

  std::vector<std::vector<NodeId>> out;
  out.reserve(n);
  for (const auto& gpath : routing.paths) {
    out.push_back(fold_path(fold, gpath));
  }
  return out;
}

Lemma28Certificate lemma28_certificate(
    const topo::Butterfly& bf, const std::vector<std::uint8_t>& sides) {
  const std::uint32_t n = bf.n();
  BFLY_CHECK(sides.size() == bf.num_nodes(), "side vector size mismatch");
  BFLY_CHECK(n >= 4, "need n >= 4");

  // Determine the minority side of level 0 (the lemma's Ā).
  std::size_t on1 = 0;
  for (std::uint32_t w = 0; w < n; ++w) on1 += sides[bf.node(w, 0)];
  const std::uint8_t minority_side = (on1 * 2 <= n) ? 1 : 0;

  const auto side_of = [&](std::uint32_t column) {
    return sides[bf.node(column, 0)];
  };
  // Beneš index c: I node = column 2c, O node = column 2c+1.
  std::vector<std::uint32_t> i_minor, i_major, o_minor, o_major;
  for (std::uint32_t c = 0; c < n / 2; ++c) {
    (side_of(2 * c) == minority_side ? i_minor : i_major).push_back(c);
    (side_of(2 * c + 1) == minority_side ? o_minor : o_major).push_back(c);
  }
  // Lemma 2.8's counting guarantees these inequalities when Ā is the
  // level-0 minority.
  BFLY_CHECK(i_minor.size() <= o_major.size(),
             "Lemma 2.8 precondition violated (|Ā∩I| > |A∩O|)");
  BFLY_CHECK(o_minor.size() <= i_major.size(),
             "Lemma 2.8 precondition violated (|Ā∩O| > |A∩I|)");

  // Node bijection pi: minority inputs -> majority outputs, minority
  // outputs <- majority inputs, rest in order.
  constexpr std::uint32_t kUnset = ~0u;
  std::vector<std::uint32_t> pi(n / 2, kUnset);
  std::vector<std::uint8_t> used_o(n / 2, 0);
  std::size_t o_cursor = 0;
  for (const std::uint32_t i : i_minor) {
    pi[i] = o_major[o_cursor];
    used_o[o_major[o_cursor++]] = 1;
  }
  std::size_t i_cursor = 0;
  for (const std::uint32_t o : o_minor) {
    while (pi[i_major[i_cursor]] != kUnset) ++i_cursor;
    pi[i_major[i_cursor]] = o;
    used_o[o] = 1;
  }
  std::size_t next_free_o = 0;
  for (std::uint32_t i = 0; i < n / 2; ++i) {
    if (pi[i] != kUnset) continue;
    while (used_o[next_free_o]) ++next_free_o;
    pi[i] = static_cast<std::uint32_t>(next_free_o);
    used_o[next_free_o] = 1;
  }

  std::vector<std::uint32_t> port_perm(n);
  for (std::uint32_t i = 0; i < n / 2; ++i) {
    port_perm[2 * i] = 2 * pi[i];
    port_perm[2 * i + 1] = 2 * pi[i] + 1;
  }

  const auto paths = lemma25_paths(bf, port_perm);

  Lemma28Certificate cert;
  cert.minority_level0 =
      minority_side == 1 ? on1 : static_cast<std::size_t>(n) - on1;
  cert.cut_capacity = cut_capacity(bf.graph(), sides);

  std::set<std::pair<NodeId, NodeId>> used_edges;
  cert.edge_disjoint = true;
  for (const auto& p : paths) {
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      const auto key = std::minmax(p[i], p[i + 1]);
      if (!used_edges.insert({key.first, key.second}).second) {
        cert.edge_disjoint = false;
      }
    }
    if (sides[p.front()] != sides[p.back()]) {
      ++cert.crossing_paths;
      cert.paths.push_back(p);
    }
  }
  return cert;
}

}  // namespace bfly::routing
