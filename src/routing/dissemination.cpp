#include "routing/dissemination.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace bfly::routing {

DisseminationTrace disseminate(const Graph& g, std::span<const NodeId> seed) {
  BFLY_CHECK(!seed.empty(), "seed must be nonempty");
  std::vector<std::uint8_t> informed(g.num_nodes(), 0);
  std::vector<NodeId> frontier;
  std::size_t count = 0;
  for (const NodeId v : seed) {
    BFLY_CHECK(v < g.num_nodes(), "seed node out of range");
    if (!informed[v]) {
      informed[v] = 1;
      frontier.push_back(v);
      ++count;
    }
  }

  DisseminationTrace trace;
  trace.informed.push_back(count);
  std::vector<NodeId> next;
  while (count < g.num_nodes()) {
    next.clear();
    for (const NodeId u : frontier) {
      for (const NodeId v : g.neighbors(u)) {
        if (!informed[v]) {
          informed[v] = 1;
          next.push_back(v);
        }
      }
    }
    BFLY_CHECK(!next.empty(), "graph is disconnected");
    count += next.size();
    frontier.swap(next);
    trace.informed.push_back(count);
    ++trace.rounds;
  }
  return trace;
}

LoadBalanceTrace balance_tokens(const Graph& g,
                                std::vector<std::uint64_t> load,
                                const LoadBalanceOptions& opts) {
  BFLY_CHECK(load.size() == g.num_nodes(), "load vector size mismatch");

  const auto imbalance = [&] {
    const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
    return *hi - *lo;
  };

  LoadBalanceTrace trace;
  trace.imbalance.push_back(imbalance());
  for (std::uint32_t round = 0; round < opts.max_rounds; ++round) {
    bool any = false;
    for (const auto& [u, v] : g.edges()) {
      if (load[u] + 1 < load[v]) {
        ++load[u];
        --load[v];
        any = true;
      } else if (load[v] + 1 < load[u]) {
        --load[u];
        ++load[v];
        any = true;
      }
    }
    if (!any) {
      trace.fixed_point = true;
      break;
    }
    ++trace.rounds;
    trace.imbalance.push_back(imbalance());
  }
  return trace;
}

}  // namespace bfly::routing
