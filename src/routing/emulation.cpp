#include "routing/emulation.hpp"

#include <algorithm>

#include "routing/packet_sim.hpp"

namespace bfly::routing {

EmulationReport emulate_full_exchange(const embed::EmbeddingCase& c) {
  EmulationReport rep;
  rep.metrics = embed::measure_embedding(c.guest, c.host, c.emb);
  rep.lcd_reference =
      rep.metrics.load + rep.metrics.congestion + rep.metrics.dilation;

  std::vector<std::vector<NodeId>> packets;
  packets.reserve(2 * c.guest.num_edges());
  for (EdgeId e = 0; e < c.guest.num_edges(); ++e) {
    const auto& path = c.emb.paths[e];
    packets.push_back(path);
    if (path.size() > 1) {
      auto rev = path;
      std::reverse(rev.begin(), rev.end());
      packets.push_back(std::move(rev));
    } else {
      packets.push_back(path);  // co-located endpoints: free delivery
    }
  }
  rep.messages_per_step = packets.size();
  const auto sim = routing::simulate_store_and_forward(c.host, packets);
  rep.step_makespan = sim.makespan;
  return rep;
}

}  // namespace bfly::routing
