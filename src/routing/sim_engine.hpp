// Phase-driven store-and-forward simulation engine (DESIGN.md §15).
//
// The paper's Section 1.2 routing motivation (claim C14) says delivering
// N random-destination packets needs at least N/(4·BW) steps. Turning
// that from a gesture into a measured experiment axis requires a
// simulator fast enough to reach B1024+ — which the reference model in
// packet_sim.cpp (unordered_map of deques, one heap node per enqueue)
// is not. This engine keeps the reference's synchronous store-and-
// forward semantics exactly (single virtual channel, unbounded queues:
// bit-identical makespan/max_queue, asserted by test_sim_engine) while
// storing everything structure-of-arrays:
//
//   * a dense directed-link table built once from the Graph — link
//     2e/2e+1 are the two directions of undirected edge e, so the hot
//     path never hashes an endpoint pair;
//   * per-(link, virtual-channel) queues living in ONE flat slot array.
//     A packet occupies a given queue at most once, so each queue's
//     slot region is sized by its static load and head/tail advance
//     monotonically — no ring arithmetic, no per-packet allocation;
//   * SoA packet state: compiled routes (flat queue-id sequences) plus
//     a position cursor per packet, compiled in parallel over packet
//     ranges with the WorkStealingScheduler.
//
// Each step is two synchronous phases separated by barriers (three with
// multiple virtual channels):
//
//   phase A (drain, over queue ranges): complete last step's departures
//     (pop sent heads), record occupancy, propose every head packet;
//   phase A2 (arbitrate, over link ranges, vcs_per_link > 1 only):
//     virtual channels are separate BUFFERS sharing one physical link —
//     a directed link transmits at most ONE packet per step regardless
//     of vcs_per_link, exactly the unit-bandwidth assumption behind
//     every bound the repo certifies (C14's N/(4·BW), the directional
//     cut bound, the per-link congestion bound). The arbiter picks the
//     lowest-numbered VC whose head can actually move (terminates at the
//     link head, or its target queue has free space under the occupancy
//     published by phase A) — a blocked head never wastes the link's
//     step, which is what makes single-step stall detection sound;
//   phase B (advance, over node ranges): per node, gather the proposals
//     of its in-queues, deliver the ones that terminate here, and admit
//     the rest to their next queue in packet-id order, bounded by the
//     virtual-channel capacity. Rejected heads simply stay put.
//
// Every phase writes disjoint state per queue/link/node, so the result
// is identical for any thread count — the parallel stepper is a pure
// speedup, asserted by the tsan stress suite. Bounded-capacity configs
// are deadlock-free when routes carry monotone stage-weighted virtual
// channels (routing::stage_weighted_vcs): the queue dependency graph is
// acyclic, so some movable head always exists, the arbiter proposes it,
// and per-target admission accepts at least the smallest packet id — at
// least one packet moves every step until the load drains. A genuinely
// stalled configuration is detected (no packet moved in a step) and
// reported as an error instead of spinning forever.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::routing {

struct SimOptions {
  /// Worker threads for stepping and route compilation. 1 = serial
  /// (the throughput-bench configuration), 0 = default_thread_count().
  unsigned num_threads = 1;
  /// Virtual channels per directed link: separate FIFO buffers sharing
  /// the link's unit bandwidth (one departure per link per step).
  std::uint32_t vcs_per_link = 1;
  /// Per-queue capacity; 0 = unbounded (the reference-model semantics).
  /// Initial injection bypasses the capacity (packets start in their
  /// first queue like the reference model); only in-network admission
  /// is bounded.
  std::uint32_t vc_capacity = 0;
  /// Abort with PreconditionError after this many steps (0 = no limit).
  /// Belt-and-braces for hostile configs; a true deadlock is detected
  /// without it.
  std::uint64_t max_steps = 0;
};

struct EngineStats {
  std::uint32_t makespan = 0;   ///< step of the last delivery
  std::uint64_t steps = 0;      ///< synchronous steps executed
  std::size_t delivered = 0;    ///< == num_packets on success
  std::size_t num_packets = 0;
  std::uint64_t total_hops = 0;  ///< sum of route lengths (moves made)
  std::size_t max_queue = 0;     ///< peak queue occupancy at a step start
  std::size_t max_link_load = 0;  ///< static: most-used directed link
};

class SimEngine {
 public:
  /// Builds the dense link table for g. The graph must outlive the
  /// engine. Throws PreconditionError on an unusable options combination.
  explicit SimEngine(const Graph& g, SimOptions opts = {});

  /// Loads one packet per path (inclusive node sequences along edges of
  /// g; single-node paths deliver at time 0). Every hop rides virtual
  /// channel 0. Resets any previous load.
  void load(const std::vector<std::vector<NodeId>>& paths);

  /// As above with an explicit virtual channel per hop (each value in
  /// [0, vcs_per_link)); hop_vcs[p] must have paths[p].size() - 1
  /// entries. Stage-weighted assignments make bounded capacities
  /// deadlock-free (see routing::stage_weighted_vcs).
  void load(const std::vector<std::vector<NodeId>>& paths,
            const std::vector<std::vector<std::uint32_t>>& hop_vcs);

  /// Runs the loaded packet set to completion and returns the stats.
  /// Consumes the load (call load() again for another run). Throws
  /// PreconditionError when the configuration stalls (bounded-capacity
  /// deadlock) or exceeds max_steps.
  [[nodiscard]] EngineStats run();

  /// Directed links (2 * num_edges) and queues (links * vcs_per_link).
  [[nodiscard]] std::size_t num_links() const noexcept {
    return link_to_.size();
  }
  [[nodiscard]] std::size_t num_queues() const noexcept {
    return link_to_.size() * opts_.vcs_per_link;
  }

 private:
  struct WorkerCtx;

  void load_impl(const std::vector<std::vector<NodeId>>& paths,
                 const std::vector<std::vector<std::uint32_t>>* hop_vcs);
  void phase_a(std::size_t q_begin, std::size_t q_end, WorkerCtx& ctx);
  void phase_arb(std::size_t l_begin, std::size_t l_end);
  void phase_b(NodeId n_begin, NodeId n_end, WorkerCtx& ctx);

  const Graph* g_;
  SimOptions opts_;

  // Dense link table (built once): link 2e+d, d=0 first->second.
  std::vector<NodeId> link_to_;            // destination node per link
  std::vector<std::uint32_t> in_q_offsets_;  // per-node in-queue CSR
  std::vector<std::uint32_t> in_q_ids_;

  // SoA packet state.
  std::vector<std::uint32_t> route_off_;  // num_packets + 1
  std::vector<std::uint32_t> pos_;        // current hop index per packet
  std::vector<std::uint32_t> route_q_;    // flat queue-id sequences

  // Queues: one flat slot array, per-queue regions sized by static load.
  std::vector<std::uint32_t> q_base_;  // num_queues + 1
  std::vector<std::uint32_t> head_;    // relative to q_base_
  std::vector<std::uint32_t> tail_;
  std::vector<std::uint32_t> slots_;   // total_hops packet ids
  std::vector<std::uint32_t> proposal_;  // per queue, kNoPacket if empty
  std::vector<std::uint8_t> sent_;       // head departed this step

  std::size_t num_packets_ = 0;
  std::size_t delivered_preloaded_ = 0;  // zero-length paths
  std::uint64_t total_hops_ = 0;
  std::size_t max_link_load_ = 0;
  bool loaded_ = false;
};

}  // namespace bfly::routing
