// Synchronous store-and-forward packet routing (the model behind the
// paper's Section 1.2 bandwidth discussion: each edge transmits one
// message per direction per time step).
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::routing {

struct SimResult {
  std::uint32_t makespan = 0;     ///< steps until the last delivery
  std::size_t max_queue = 0;      ///< peak queue length on any link
  std::size_t delivered = 0;      ///< packets delivered (== packets in)
  std::size_t max_link_load = 0;  ///< max packets assigned to one link
};

/// Simulates FIFO store-and-forward routing of packets along fixed paths
/// (inclusive node sequences following edges of g). Each directed edge
/// moves at most one packet per step. Zero-length paths (single node)
/// deliver at time 0.
[[nodiscard]] SimResult simulate_store_and_forward(
    const Graph& g, const std::vector<std::vector<NodeId>>& paths);

}  // namespace bfly::routing
