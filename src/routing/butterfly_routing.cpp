#include "routing/butterfly_routing.hpp"

#include "core/error.hpp"

namespace bfly::routing {

std::vector<NodeId> route_bn(const topo::Butterfly& bf, NodeId src,
                             NodeId dst) {
  const std::uint32_t d = bf.dims();
  const std::uint32_t ws = bf.column(src), ls = bf.level(src);
  const std::uint32_t wd = bf.column(dst), ld = bf.level(dst);
  std::vector<NodeId> path;
  path.push_back(src);
  if (src == dst) return path;

  if (ws == wd) {
    // Same column: straight walk.
    std::uint32_t l = ls;
    while (l != ld) {
      l = ld > l ? l + 1 : l - 1;
      path.push_back(bf.node(ws, l));
    }
    return path;
  }
  // Up to level 0.
  for (std::uint32_t l = ls; l > 0; --l) path.push_back(bf.node(ws, l - 1));
  // Monotonic bit-fixing descent to <wd, d>.
  const auto mono = bf.monotonic_path(ws, wd);
  path.insert(path.end(), mono.begin() + 1, mono.end());
  // Up the destination column.
  for (std::uint32_t l = d; l > ld; --l) path.push_back(bf.node(wd, l - 1));
  return path;
}

std::vector<NodeId> route_wn(const topo::WrappedButterfly& wb, NodeId src,
                             NodeId dst) {
  const std::uint32_t d = wb.dims();
  const std::uint32_t n = wb.n();
  const std::uint32_t ws = wb.column(src), ls = wb.level(src);
  const std::uint32_t wd = wb.column(dst), ld = wb.level(dst);
  std::vector<NodeId> path;
  path.push_back(src);
  if (src == dst) return path;

  // Segment 1: up the source column to level 0.
  for (std::uint32_t l = ls; l > 0; --l) path.push_back(wb.node(ws, l - 1));
  if (ws != wd) {
    // Segment 2: one full wrap fixing bits toward wd.
    for (std::uint32_t step = 1; step <= d; ++step) {
      const std::uint32_t high_mask =
          step == d ? n - 1 : (~((1u << (d - step)) - 1)) & (n - 1);
      const std::uint32_t col = (wd & high_mask) | (ws & ~high_mask & (n - 1));
      path.push_back(wb.node(col, step % d));
    }
  }
  // Segment 3: down the destination column (decreasing levels) to ld.
  if (ld != 0) {
    for (std::uint32_t l = d - 1;; --l) {
      path.push_back(wb.node(wd, l));
      if (l == ld) break;
    }
  }
  return path;
}

}  // namespace bfly::routing
