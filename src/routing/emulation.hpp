// Network emulation via embeddings (paper Section 1.5).
//
// The paper surveys work-preserving emulations (Koch et al. [12],
// Schwabe [26], Maggs–Schwabe [18]): a host network emulates each step
// of a guest computation with slowdown governed by the embedding's
// load, congestion, and dilation. We realize the standard model: one
// guest step = one message across every guest edge (both directions);
// the host routes all of them along the embedded paths under one-packet-
// per-link-per-step switching. The measured per-step makespan is the
// emulation slowdown, to be compared with the load+congestion+dilation
// yardstick.
#pragma once

#include <cstdint>

#include "embed/embedding.hpp"
#include "embed/factory.hpp"

namespace bfly::routing {

struct EmulationReport {
  /// Messages routed per emulated guest step (2 per guest edge).
  std::size_t messages_per_step = 0;
  /// Host steps needed to deliver one guest step's messages.
  std::uint32_t step_makespan = 0;
  /// load + congestion + dilation of the embedding (the classic
  /// slowdown yardstick; the emulation should be within a small factor).
  std::size_t lcd_reference = 0;
  embed::EmbeddingMetrics metrics;
};

/// Simulates one full-exchange guest step through the embedding.
[[nodiscard]] EmulationReport emulate_full_exchange(
    const embed::EmbeddingCase& c);

}  // namespace bfly::routing
