#include "routing/benes_route.hpp"

#include <array>
#include <limits>
#include <unordered_map>

#include "core/error.hpp"

namespace bfly::routing {

namespace {

// Recursive looping solver. cols[s][l] is signal s's column at level l.
// At depth `l`, `signals` occupy distinct columns sharing their top l
// bits, both at level l and at level 2d-l; the solver chooses bit
// position l+1 (the subnetwork) for each signal, sets levels l+1 and
// 2d-l-1, and recurses into the two half-size subnetworks.
class Looper {
 public:
  Looper(std::uint32_t dims, std::vector<std::vector<std::uint32_t>>& cols)
      : d_(dims), cols_(cols) {}

  void solve(std::uint32_t l, std::vector<std::uint32_t> signals) {
    if (l == d_) return;  // single column left; level d already fixed
    const std::uint32_t mask = 1u << (d_ - (l + 1));  // paper position l+1

    // Partners through the input-side and output-side pairings.
    std::unordered_map<std::uint32_t, std::uint32_t> by_in, by_out;
    by_in.reserve(signals.size());
    by_out.reserve(signals.size());
    for (const std::uint32_t s : signals) {
      by_in[cols_[s][l]] = s;
      by_out[cols_[s][2 * d_ - l]] = s;
    }
    const auto in_partner = [&](std::uint32_t s) {
      return by_in.at(cols_[s][l] ^ mask);
    };
    const auto out_partner = [&](std::uint32_t s) {
      return by_out.at(cols_[s][2 * d_ - l] ^ mask);
    };

    // 2-color the alternating in/out constraint cycles.
    std::unordered_map<std::uint32_t, std::uint8_t> color;
    color.reserve(signals.size());
    for (const std::uint32_t s0 : signals) {
      if (color.count(s0)) continue;
      std::uint32_t s = s0;
      std::uint8_t c = 0;
      // Walk the cycle alternating in-partner / out-partner links.
      while (true) {
        color[s] = c;
        const std::uint32_t t = in_partner(s);
        BFLY_ASSERT(!color.count(t) || color[t] == (c ^ 1));
        color[t] = c ^ 1;
        const std::uint32_t u = out_partner(t);
        if (u == s0) break;
        s = u;
        c = color[t] ^ 1;
        if (color.count(s)) break;
      }
    }

    // Apply the subnetwork choice and split.
    std::vector<std::uint32_t> sub[2];
    for (const std::uint32_t s : signals) {
      const std::uint8_t b = color.at(s);
      const std::uint32_t bit = b ? mask : 0u;
      cols_[s][l + 1] = (cols_[s][l] & ~mask) | bit;
      cols_[s][2 * d_ - l - 1] = (cols_[s][2 * d_ - l] & ~mask) | bit;
      sub[b].push_back(s);
    }
    solve(l + 1, std::move(sub[0]));
    solve(l + 1, std::move(sub[1]));
  }

 private:
  std::uint32_t d_;
  std::vector<std::vector<std::uint32_t>>& cols_;
};

// Two-port variant: every level-l node hosts exactly two signals; the
// co-hosted pair must split between the two subnetworks (they leave on
// the node's two distinct boundary edges), and likewise on the output
// side. Same alternating-cycle 2-coloring, different pairing relation.
class TwoPortLooper {
 public:
  TwoPortLooper(std::uint32_t dims,
                std::vector<std::vector<std::uint32_t>>& cols)
      : d_(dims), cols_(cols) {}

  void solve(std::uint32_t l, std::vector<std::uint32_t> signals) {
    if (l == d_) return;
    const std::uint32_t mask = 1u << (d_ - (l + 1));

    // Co-hosted pairs: two signals per column at level l / level 2d-l.
    std::unordered_map<std::uint32_t, std::array<std::uint32_t, 2>> in_host,
        out_host;
    constexpr std::array<std::uint32_t, 2> kEmpty = {kNone, kNone};
    for (const std::uint32_t s : signals) {
      auto& ih = in_host.try_emplace(cols_[s][l], kEmpty).first->second;
      (ih[0] == kNone ? ih[0] : ih[1]) = s;
      auto& oh =
          out_host.try_emplace(cols_[s][2 * d_ - l], kEmpty).first->second;
      (oh[0] == kNone ? oh[0] : oh[1]) = s;
    }
    const auto in_partner = [&](std::uint32_t s) {
      const auto& h = in_host.at(cols_[s][l]);
      return h[0] == s ? h[1] : h[0];
    };
    const auto out_partner = [&](std::uint32_t s) {
      const auto& h = out_host.at(cols_[s][2 * d_ - l]);
      return h[0] == s ? h[1] : h[0];
    };

    std::unordered_map<std::uint32_t, std::uint8_t> color;
    color.reserve(signals.size());
    for (const std::uint32_t s0 : signals) {
      if (color.count(s0)) continue;
      std::uint32_t s = s0;
      while (true) {
        color[s] = 0;
        const std::uint32_t t = in_partner(s);
        color[t] = 1;
        const std::uint32_t u = out_partner(t);
        if (u == s0 || color.count(u)) break;
        s = u;
      }
    }

    std::vector<std::uint32_t> sub[2];
    for (const std::uint32_t s : signals) {
      const std::uint8_t b = color.at(s);
      const std::uint32_t bit = b ? mask : 0u;
      cols_[s][l + 1] = (cols_[s][l] & ~mask) | bit;
      cols_[s][2 * d_ - l - 1] = (cols_[s][2 * d_ - l] & ~mask) | bit;
      sub[b].push_back(s);
    }
    solve(l + 1, std::move(sub[0]));
    solve(l + 1, std::move(sub[1]));
  }

 private:
  static constexpr std::uint32_t kNone =
      std::numeric_limits<std::uint32_t>::max();
  std::uint32_t d_;
  std::vector<std::vector<std::uint32_t>>& cols_;
};

}  // namespace

BenesRouting route_permutation(const topo::Benes& benes,
                               std::span<const std::uint32_t> perm) {
  const std::uint32_t n = benes.n();
  const std::uint32_t d = benes.dims();
  BFLY_CHECK(perm.size() == n, "permutation size must equal column count");
  {
    std::vector<std::uint8_t> seen(n, 0);
    for (const std::uint32_t p : perm) {
      BFLY_CHECK(p < n && !seen[p], "perm must be a bijection on [0, n)");
      seen[p] = 1;
    }
  }

  std::vector<std::vector<std::uint32_t>> cols(
      n, std::vector<std::uint32_t>(2 * d + 1, 0));
  std::vector<std::uint32_t> signals(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    cols[s][0] = s;
    cols[s][2 * d] = perm[s];
    signals[s] = s;
  }
  Looper looper(d, cols);
  looper.solve(0, std::move(signals));

  BenesRouting out;
  out.paths.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    std::vector<NodeId> path;
    path.reserve(2 * d + 1);
    for (std::uint32_t l = 0; l <= 2 * d; ++l) {
      path.push_back(benes.node(cols[s][l], l));
    }
    out.paths.push_back(std::move(path));
  }
  return out;
}

BenesRouting route_two_port_permutation(
    const topo::Benes& benes, std::span<const std::uint32_t> port_perm) {
  const std::uint32_t n = benes.n();
  const std::uint32_t d = benes.dims();
  const std::uint32_t ports = 2 * n;
  BFLY_CHECK(port_perm.size() == ports,
             "port permutation must have size 2n");
  {
    std::vector<std::uint8_t> seen(ports, 0);
    for (const std::uint32_t p : port_perm) {
      BFLY_CHECK(p < ports && !seen[p],
                 "port_perm must be a bijection on [0, 2n)");
      seen[p] = 1;
    }
  }

  std::vector<std::vector<std::uint32_t>> cols(
      ports, std::vector<std::uint32_t>(2 * d + 1, 0));
  std::vector<std::uint32_t> signals(ports);
  for (std::uint32_t s = 0; s < ports; ++s) {
    cols[s][0] = s / 2;                 // input node of port s
    cols[s][2 * d] = port_perm[s] / 2;  // output node of its image port
    signals[s] = s;
  }
  TwoPortLooper looper(d, cols);
  looper.solve(0, std::move(signals));

  BenesRouting out;
  out.paths.reserve(ports);
  for (std::uint32_t s = 0; s < ports; ++s) {
    std::vector<NodeId> path;
    path.reserve(2 * d + 1);
    for (std::uint32_t l = 0; l <= 2 * d; ++l) {
      path.push_back(benes.node(cols[s][l], l));
    }
    out.paths.push_back(std::move(path));
  }
  return out;
}

}  // namespace bfly::routing
