// Random-destination routing experiment (paper Section 1.2): each node
// sends one packet to a uniformly random destination; the time any
// schedule needs is at least (expected) N/(4 BW(G)), tying routing speed
// to the bisection width.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"
#include "routing/packet_sim.hpp"

namespace bfly::routing {

struct RandomRouteReport {
  SimResult sim;
  std::size_t num_packets = 0;
  /// Messages that actually crossed the given bisection (for comparison
  /// with the N/4 expectation).
  std::size_t cross_bisection = 0;
  /// The Section 1.2 time lower bound N / (4 BW).
  double bisection_time_bound = 0.0;
};

/// Runs the experiment with a caller-supplied router (src, dst) -> path.
/// `bisection_sides`/`bw` describe a known bisection used for the bound.
[[nodiscard]] RandomRouteReport random_destination_experiment(
    const Graph& g,
    const std::function<std::vector<NodeId>(NodeId, NodeId)>& route,
    const std::vector<std::uint8_t>& bisection_sides, std::size_t bw,
    std::uint64_t seed);

}  // namespace bfly::routing
