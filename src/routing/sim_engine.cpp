#include "routing/sim_engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "core/error.hpp"
#include "core/sharding.hpp"
#include "core/thread_pool.hpp"

namespace bfly::routing {

namespace {

constexpr std::uint32_t kNoPacket = 0xFFFFFFFFu;

// Sense-reversing spin barrier for the synchronous phases. Stepping
// needs two barriers per step (three with multi-VC arbitration), so a
// per-step WorkStealingScheduler run
// (thread spawn + join each phase) would cost more than the phases
// themselves; the persistent worker pool spins here instead. The last
// arriver runs the leader functor (the per-step reduction) before
// releasing the others, which gives the classic barrier + serial-section
// shape with exactly one atomic RMW per worker per phase. Bounded spin,
// then yield: correct on oversubscribed machines (the 1-core tsan leg),
// fast on real ones.
class PhaseBarrier {
 public:
  explicit PhaseBarrier(unsigned parties) : parties_(parties) {}

  template <typename Leader>
  void arrive_and_wait(bool& my_sense, Leader&& leader) {
    my_sense = !my_sense;
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      leader();
      sense_.store(my_sense, std::memory_order_release);
      return;
    }
    int spins = 0;
    while (sense_.load(std::memory_order_acquire) != my_sense) {
      if (++spins > 1024) std::this_thread::yield();
    }
  }

 private:
  const unsigned parties_;
  std::atomic<unsigned> arrived_{0};
  std::atomic<bool> sense_{false};
};

// [begin, end) of the w-th of `parts` contiguous ranges over n items.
std::pair<std::size_t, std::size_t> split_range(std::size_t n, unsigned parts,
                                                unsigned w) {
  const std::size_t base = n / parts;
  const std::size_t rem = n % parts;
  const std::size_t begin = w * base + std::min<std::size_t>(w, rem);
  return {begin, begin + base + (w < rem ? 1 : 0)};
}

unsigned resolve_threads(unsigned requested) {
  return requested == 0 ? default_thread_count() : requested;
}

}  // namespace

// Per-worker step state, padded so the hot counters of neighboring
// workers never share a cache line.
struct alignas(64) SimEngine::WorkerCtx {
  std::uint64_t delivered = 0;  // this step
  std::uint64_t moved = 0;      // this step (every departed head)
  std::size_t max_queue = 0;    // running max over the whole run

  // Phase-B scratch: (target queue, packet, source queue) candidates of
  // one node. Reused across steps; butterfly degrees keep it tiny.
  struct Cand {
    std::uint32_t tq;
    std::uint32_t pkt;
    std::uint32_t iq;
  };
  std::vector<Cand> cands;
};

SimEngine::SimEngine(const Graph& g, SimOptions opts)
    : g_(&g), opts_(opts) {
  BFLY_CHECK(opts_.vcs_per_link >= 1 && opts_.vcs_per_link <= 64,
             "vcs_per_link must be in [1, 64]");
  const std::size_t num_links = 2 * g.num_edges();
  BFLY_CHECK(num_links * opts_.vcs_per_link < kNoPacket,
             "queue table too large for 32-bit ids");

  link_to_.resize(num_links);
  std::vector<std::uint32_t> in_degree(g.num_nodes() + 1, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    link_to_[2 * e] = v;      // u -> v
    link_to_[2 * e + 1] = u;  // v -> u
    ++in_degree[v];
    ++in_degree[u];
  }

  // Per-node in-queue CSR: the queues whose link terminates at the node,
  // ordered by (link, vc) — the deterministic gather order of phase B.
  const std::uint32_t vcs = opts_.vcs_per_link;
  in_q_offsets_.assign(g.num_nodes() + 1, 0);
  for (NodeId a = 0; a < g.num_nodes(); ++a) {
    in_q_offsets_[a + 1] = in_q_offsets_[a] + in_degree[a] * vcs;
  }
  in_q_ids_.resize(in_q_offsets_[g.num_nodes()]);
  std::vector<std::uint32_t> fill(g.num_nodes(), 0);
  for (std::size_t l = 0; l < num_links; ++l) {
    const NodeId a = link_to_[l];
    for (std::uint32_t v = 0; v < vcs; ++v) {
      in_q_ids_[in_q_offsets_[a] + fill[a]++] =
          static_cast<std::uint32_t>(l) * vcs + v;
    }
  }
}

void SimEngine::load(const std::vector<std::vector<NodeId>>& paths) {
  load_impl(paths, nullptr);
}

void SimEngine::load(const std::vector<std::vector<NodeId>>& paths,
                     const std::vector<std::vector<std::uint32_t>>& hop_vcs) {
  BFLY_CHECK(hop_vcs.size() == paths.size(),
             "hop_vcs must cover every path");
  load_impl(paths, &hop_vcs);
}

void SimEngine::load_impl(
    const std::vector<std::vector<NodeId>>& paths,
    const std::vector<std::vector<std::uint32_t>>* hop_vcs) {
  const Graph& g = *g_;
  num_packets_ = paths.size();
  BFLY_CHECK(num_packets_ < kNoPacket, "too many packets for 32-bit ids");
  delivered_preloaded_ = 0;

  // Route offsets (prefix over hop counts) — serial, trivial.
  route_off_.assign(num_packets_ + 1, 0);
  for (std::size_t p = 0; p < num_packets_; ++p) {
    BFLY_CHECK(!paths[p].empty(), "packet path must be nonempty");
    if (hop_vcs != nullptr) {
      BFLY_CHECK((*hop_vcs)[p].size() + 1 == paths[p].size(),
                 "hop_vcs entry must have one vc per hop");
    }
    route_off_[p + 1] =
        route_off_[p] + static_cast<std::uint32_t>(paths[p].size() - 1);
  }
  total_hops_ = route_off_[num_packets_];
  route_q_.resize(total_hops_);
  pos_.assign(num_packets_, 0);

  // Compile node paths into flat queue-id sequences, in parallel over
  // packet ranges (disjoint output slices). The per-hop edge lookup is a
  // binary search in the sorted adjacency row — off the stepping hot
  // path, once per hop ever.
  const std::uint32_t vcs = opts_.vcs_per_link;
  const unsigned workers = resolve_threads(opts_.num_threads);
  const std::size_t shards =
      workers <= 1 ? 1
                   : std::min<std::size_t>(std::max<std::size_t>(
                                               num_packets_ / 1024, workers),
                                           4 * workers);
  WorkStealingScheduler::Options ws_opts;
  ws_opts.num_workers = workers;
  WorkStealingScheduler::run(
      shards,
      [&](std::size_t shard, unsigned) {
        const auto [pb, pe] = split_range(num_packets_,
                                          static_cast<unsigned>(shards),
                                          static_cast<unsigned>(shard));
        for (std::size_t p = pb; p < pe; ++p) {
          const auto& path = paths[p];
          for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            const NodeId from = path[i];
            const NodeId to = path[i + 1];
            BFLY_CHECK(from < g.num_nodes() && to < g.num_nodes(),
                       "packet path node out of range");
            const auto nbrs = g.neighbors(from);
            const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), to);
            BFLY_CHECK(it != nbrs.end() && *it == to,
                       "packet path step is not an edge");
            const EdgeId eid =
                g.incident_edges(from)[static_cast<std::size_t>(
                    it - nbrs.begin())];
            const std::uint32_t dir = g.edge(eid).first == from ? 0 : 1;
            std::uint32_t vc = 0;
            if (hop_vcs != nullptr) {
              vc = (*hop_vcs)[p][i];
              BFLY_CHECK(vc < vcs, "hop vc out of range");
            }
            route_q_[route_off_[p] + i] = (2 * eid + dir) * vcs + vc;
          }
        }
      },
      ws_opts);

  // Static per-queue loads size the slot regions; per-link sums give
  // max_link_load (the congestion figure the benches report).
  const std::size_t num_queues = link_to_.size() * vcs;
  q_base_.assign(num_queues + 1, 0);
  for (const std::uint32_t q : route_q_) ++q_base_[q + 1];
  max_link_load_ = 0;
  for (std::size_t l = 0; l < link_to_.size(); ++l) {
    std::size_t load = 0;
    for (std::uint32_t v = 0; v < vcs; ++v) load += q_base_[l * vcs + v + 1];
    max_link_load_ = std::max(max_link_load_, load);
  }
  for (std::size_t q = 0; q < num_queues; ++q) q_base_[q + 1] += q_base_[q];

  head_.assign(num_queues, 0);
  tail_.assign(num_queues, 0);
  slots_.resize(total_hops_);
  proposal_.assign(num_queues, kNoPacket);
  sent_.assign(num_queues, 0);

  // Inject first hops in packet-id order: each queue's initial slots are
  // ascending ids, matching the (fixed) reference model's enqueue order.
  for (std::size_t p = 0; p < num_packets_; ++p) {
    if (route_off_[p + 1] == route_off_[p]) {
      ++delivered_preloaded_;
      continue;
    }
    const std::uint32_t q = route_q_[route_off_[p]];
    slots_[q_base_[q] + tail_[q]++] = static_cast<std::uint32_t>(p);
  }
  loaded_ = true;
}

void SimEngine::phase_a(std::size_t q_begin, std::size_t q_end,
                        WorkerCtx& ctx) {
  const bool multi_vc = opts_.vcs_per_link > 1;
  for (std::size_t q = q_begin; q < q_end; ++q) {
    if (sent_[q] != 0) {  // complete last step's departure
      ++head_[q];
      sent_[q] = 0;
    }
    const std::uint32_t occ = tail_[q] - head_[q];
    if (occ != 0) {
      ctx.max_queue = std::max<std::size_t>(ctx.max_queue, occ);
    }
    if (multi_vc) continue;  // phase_arb owns the proposals
    proposal_[q] =
        occ == 0 ? kNoPacket : slots_[q_base_[q] + head_[q]];
  }
}

// Link arbitration (vcs_per_link > 1): one proposal per directed link —
// the lowest-numbered VC whose head can move under the occupancies
// published by phase A. head_/tail_ are stable here (heads popped in
// phase A, tails grow in phase B), so cross-queue occupancy reads are
// race-free; proposal_ writes are disjoint per link.
void SimEngine::phase_arb(std::size_t l_begin, std::size_t l_end) {
  const std::uint32_t vcs = opts_.vcs_per_link;
  const std::uint32_t cap = opts_.vc_capacity;
  for (std::size_t l = l_begin; l < l_end; ++l) {
    bool chosen = false;
    for (std::uint32_t v = 0; v < vcs; ++v) {
      const std::uint32_t q = static_cast<std::uint32_t>(l * vcs + v);
      proposal_[q] = kNoPacket;
      if (chosen || head_[q] == tail_[q]) continue;
      const std::uint32_t pkt = slots_[q_base_[q] + head_[q]];
      const std::uint32_t next = pos_[pkt] + 1;
      bool movable = route_off_[pkt] + next == route_off_[pkt + 1];
      if (!movable) {
        if (cap == 0) {
          movable = true;
        } else {
          const std::uint32_t tq = route_q_[route_off_[pkt] + next];
          movable = tail_[tq] - head_[tq] < cap;
        }
      }
      if (movable) {
        chosen = true;
        proposal_[q] = pkt;
      }
    }
  }
}

void SimEngine::phase_b(NodeId n_begin, NodeId n_end, WorkerCtx& ctx) {
  const std::uint32_t cap = opts_.vc_capacity;
  auto& cands = ctx.cands;
  for (NodeId a = n_begin; a < n_end; ++a) {
    cands.clear();
    for (std::uint32_t k = in_q_offsets_[a]; k < in_q_offsets_[a + 1]; ++k) {
      const std::uint32_t iq = in_q_ids_[k];
      const std::uint32_t pkt = proposal_[iq];
      if (pkt == kNoPacket) continue;
      const std::uint32_t next = pos_[pkt] + 1;
      if (route_off_[pkt] + next == route_off_[pkt + 1]) {
        // Terminates here: deliveries are always admitted.
        ++ctx.delivered;
        ++ctx.moved;
        sent_[iq] = 1;
        continue;
      }
      cands.push_back({route_q_[route_off_[pkt] + next], pkt, iq});
    }
    if (cands.empty()) continue;
    // Admission in packet-id order per target queue: deterministic for
    // any worker count, and the exact tie-break of the reference model.
    std::sort(cands.begin(), cands.end(),
              [](const WorkerCtx::Cand& x, const WorkerCtx::Cand& y) {
                return x.tq != y.tq ? x.tq < y.tq : x.pkt < y.pkt;
              });
    for (std::size_t i = 0; i < cands.size();) {
      const std::uint32_t tq = cands[i].tq;
      std::uint32_t free = kNoPacket;  // unbounded
      if (cap != 0) {
        const std::uint32_t occ = tail_[tq] - head_[tq];
        free = occ >= cap ? 0 : cap - occ;
      }
      for (; i < cands.size() && cands[i].tq == tq; ++i) {
        if (free == 0) continue;  // head stays put, retries next step
        if (free != kNoPacket) --free;
        const std::uint32_t pkt = cands[i].pkt;
        ++pos_[pkt];
        slots_[q_base_[tq] + tail_[tq]++] = pkt;
        sent_[cands[i].iq] = 1;
        ++ctx.moved;
      }
    }
  }
}

EngineStats SimEngine::run() {
  BFLY_CHECK(loaded_, "load() a packet set before run()");
  loaded_ = false;  // the run consumes the queue state

  EngineStats stats;
  stats.num_packets = num_packets_;
  stats.total_hops = total_hops_;
  stats.max_link_load = max_link_load_;
  stats.delivered = delivered_preloaded_;
  if (stats.delivered == num_packets_) return stats;

  const std::size_t num_queues = link_to_.size() * opts_.vcs_per_link;
  const NodeId num_nodes = g_->num_nodes();
  const unsigned threads = std::max(1u, std::min<unsigned>(
      resolve_threads(opts_.num_threads),
      static_cast<unsigned>(std::min<std::size_t>(num_queues, num_nodes))));

  std::uint64_t delivered_total = delivered_preloaded_;
  std::uint64_t moved_total = 0;
  std::uint32_t makespan = 0;
  std::uint64_t steps = 0;
  bool stalled = false;
  bool overran = false;

  const bool multi_vc = opts_.vcs_per_link > 1;

  if (threads <= 1) {
    WorkerCtx ctx;
    for (std::uint64_t step = 1;; ++step) {
      ctx.delivered = 0;
      ctx.moved = 0;
      phase_a(0, num_queues, ctx);
      if (multi_vc) phase_arb(0, link_to_.size());
      phase_b(0, num_nodes, ctx);
      delivered_total += ctx.delivered;
      moved_total += ctx.moved;
      if (ctx.delivered != 0) makespan = static_cast<std::uint32_t>(step);
      steps = step;
      if (delivered_total == num_packets_) break;
      if (ctx.moved == 0) {
        stalled = true;
        break;
      }
      if (opts_.max_steps != 0 && step >= opts_.max_steps) {
        overran = true;
        break;
      }
    }
    stats.max_queue = ctx.max_queue;
  } else {
    PhaseBarrier barrier(threads);
    std::vector<WorkerCtx> ctxs(threads);
    bool stop = false;  // leader-written between barriers (release via
                        // the barrier's sense publish, acquire on spin)

    auto worker = [&](unsigned w) {
      const auto [qb, qe] = split_range(num_queues, threads, w);
      const auto [lb, le] = split_range(link_to_.size(), threads, w);
      const auto [nb, ne] = split_range(num_nodes, threads, w);
      bool sense = false;
      for (std::uint64_t step = 1;; ++step) {
        phase_a(qb, qe, ctxs[w]);
        if (multi_vc) {
          barrier.arrive_and_wait(sense, [] {});
          phase_arb(lb, le);
        }
        barrier.arrive_and_wait(sense, [] {});
        phase_b(nb, ne, ctxs[w]);
        barrier.arrive_and_wait(sense, [&, step] {
          std::uint64_t delivered = 0;
          std::uint64_t moved = 0;
          for (auto& c : ctxs) {
            delivered += c.delivered;
            moved += c.moved;
            c.delivered = 0;
            c.moved = 0;
          }
          delivered_total += delivered;
          moved_total += moved;
          if (delivered != 0) makespan = static_cast<std::uint32_t>(step);
          steps = step;
          if (delivered_total == num_packets_) {
            stop = true;
          } else if (moved == 0) {
            stalled = true;
            stop = true;
          } else if (opts_.max_steps != 0 && step >= opts_.max_steps) {
            overran = true;
            stop = true;
          }
        });
        if (stop) return;
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (unsigned w = 1; w < threads; ++w) pool.emplace_back(worker, w);
    worker(0);
    for (auto& t : pool) t.join();
    for (const auto& c : ctxs) {
      stats.max_queue = std::max(stats.max_queue, c.max_queue);
    }
  }

  BFLY_CHECK(!stalled,
             "simulation stalled: no packet moved in a step (bounded "
             "virtual-channel deadlock — use stage-weighted vcs)");
  BFLY_CHECK(!overran, "simulation exceeded max_steps");
  BFLY_ASSERT_MSG(moved_total == total_hops_,
                  "every compiled hop is traversed exactly once");
  stats.delivered = static_cast<std::size_t>(delivered_total);
  stats.makespan = makespan;
  stats.steps = steps;
  return stats;
}

}  // namespace bfly::routing
