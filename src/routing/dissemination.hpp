// Information dissemination and local load balancing (paper Section 1.3).
//
// The paper motivates expansion through two dynamics:
//   * dissemination: a set of k informed nodes grows to k + NE(G, k)
//     informed nodes per step, so the time to inform everyone is
//     governed by the node-expansion function;
//   * load balancing (Ghosh et al. [8]): tokens move along edges toward
//     less-loaded neighbors; the convergence rate is governed by edge
//     expansion.
// This module simulates both exactly so benches can put measured curves
// next to the Section 4 expansion functions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::routing {

struct DisseminationTrace {
  /// informed-set size after each step (entry 0 = |seed|).
  std::vector<std::size_t> informed;
  /// Steps until everyone is informed.
  std::uint32_t rounds = 0;
};

/// One-step-neighborhood broadcast: every step, all neighbors of the
/// informed set become informed (the idealized dynamic of Section 1.3,
/// whose per-step growth is exactly the node expansion of the current
/// set).
[[nodiscard]] DisseminationTrace disseminate(const Graph& g,
                                             std::span<const NodeId> seed);

struct LoadBalanceOptions {
  std::uint32_t max_rounds = 10000;
};

struct LoadBalanceTrace {
  /// max-min load imbalance after each round (entry 0 = initial).
  std::vector<std::uint64_t> imbalance;
  std::uint32_t rounds = 0;
  /// True iff a local fixed point was reached (every edge's endpoint
  /// loads differ by at most 1). At a fixed point the global imbalance
  /// is at most the graph diameter — the discrepancy local algorithms
  /// are known to reach ([8] analyses sharper variants).
  bool fixed_point = false;
};

/// The classic dimension-free local balancing step: in each round every
/// edge (u, v) moves one token from the heavier endpoint to the lighter
/// one when their loads differ by at least 2 (first-order diffusion with
/// unit quanta; edges processed in id order within a round). Runs until
/// a local fixed point or max_rounds.
[[nodiscard]] LoadBalanceTrace balance_tokens(
    const Graph& g, std::vector<std::uint64_t> load,
    const LoadBalanceOptions& opts = {});

}  // namespace bfly::routing
