#include "routing/traffic.hpp"

#include <algorithm>
#include <charconv>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "routing/butterfly_routing.hpp"

namespace bfly::routing {

namespace {

std::uint32_t reverse_bits(std::uint32_t c, std::uint32_t dims) {
  std::uint32_t r = 0;
  for (std::uint32_t b = 0; b < dims; ++b) {
    r = (r << 1) | ((c >> b) & 1u);
  }
  return r;
}

std::uint32_t rotate_half(std::uint32_t c, std::uint32_t dims) {
  const std::uint32_t h = dims / 2;
  if (h == 0) return c;
  const std::uint32_t mask = (dims == 32 ? 0xFFFFFFFFu : (1u << dims) - 1);
  return ((c << h) | (c >> (dims - h))) & mask;
}

[[noreturn]] void spec_error(std::string_view text, const std::string& why) {
  throw TrafficError("bad traffic spec \"" + std::string(text) + "\": " + why);
}

std::uint64_t parse_u64(std::string_view text, std::string_view field,
                        std::string_view value, std::uint64_t max) {
  std::uint64_t out = 0;
  const auto* end = value.data() + value.size();
  const auto res = std::from_chars(value.data(), end, out);
  if (res.ec != std::errc{} || res.ptr != end || value.empty()) {
    spec_error(text, "malformed value for " + std::string(field));
  }
  if (out > max) {
    spec_error(text, std::string(field) + " out of range");
  }
  return out;
}

struct SpecCounts {
  bool ppn = false;
  bool seed = false;
  bool hot = false;
};

// Shared generator body. `level_delta(cur, next)` returns +1/-1 for the
// level direction of one hop; `route(src, dst)` the oblivious path.
template <typename Topo, typename Route>
TrafficSet generate(const Topo& topo, const TrafficSpec& spec,
                    const std::vector<std::uint8_t>* sides, NodeId far_node,
                    NodeId perm_dst_level_node_base, const Route& route) {
  const Graph& g = topo.graph();
  const NodeId num = g.num_nodes();
  const std::uint32_t ppn = spec.packets_per_node;
  BFLY_CHECK(ppn >= 1 && ppn <= 4096, "packets_per_node must be in [1, 4096]");
  if (sides != nullptr) {
    BFLY_CHECK(sides->size() == num, "witness side vector size mismatch");
  }

  TrafficSet out;
  Rng rng(spec.seed);

  // Opposite-side pools for the cut-saturating pattern.
  std::vector<NodeId> pool[2];
  if (spec.pattern == TrafficPattern::kCutSaturating) {
    BFLY_CHECK(sides != nullptr,
               "cutsat traffic needs a witness bisection (CutResult::sides)");
    for (NodeId v = 0; v < num; ++v) pool[(*sides)[v] ? 1 : 0].push_back(v);
    BFLY_CHECK(!pool[0].empty() && !pool[1].empty(),
               "witness cut must have two nonempty sides");
  }

  auto add = [&](NodeId src, NodeId dst) {
    out.paths.push_back(route(src, dst));
    out.max_hops = std::max(out.max_hops, out.paths.back().size() - 1);
    if (sides != nullptr && (*sides)[src] != (*sides)[dst]) {
      if ((*sides)[src] == 0) {
        ++out.cross_ab;
      } else {
        ++out.cross_ba;
      }
    }
  };

  switch (spec.pattern) {
    case TrafficPattern::kUniform:
      for (NodeId v = 0; v < num; ++v) {
        for (std::uint32_t k = 0; k < ppn; ++k) {
          add(v, static_cast<NodeId>(rng.below(num)));
        }
      }
      break;
    case TrafficPattern::kBitReversal:
    case TrafficPattern::kTranspose:
      for (std::uint32_t c = 0; c < topo.n(); ++c) {
        const std::uint32_t dc = spec.pattern == TrafficPattern::kBitReversal
                                     ? reverse_bits(c, topo.dims())
                                     : rotate_half(c, topo.dims());
        const NodeId src = topo.node(c, 0);
        const NodeId dst = perm_dst_level_node_base + dc;
        for (std::uint32_t k = 0; k < ppn; ++k) add(src, dst);
      }
      break;
    case TrafficPattern::kHotspot:
      for (NodeId v = 0; v < num; ++v) {
        for (std::uint32_t k = 0; k < ppn; ++k) {
          const bool hot = rng.below(100) < spec.hotspot_percent;
          add(v, hot ? far_node : static_cast<NodeId>(rng.below(num)));
        }
      }
      break;
    case TrafficPattern::kCutSaturating:
      for (NodeId v = 0; v < num; ++v) {
        const auto& opposite = pool[(*sides)[v] ? 0 : 1];
        for (std::uint32_t k = 0; k < ppn; ++k) {
          add(v, opposite[rng.below(opposite.size())]);
        }
      }
      break;
  }
  return out;
}

// Segment index per hop: increments when the level direction reverses.
template <typename LevelDelta>
std::vector<std::vector<std::uint32_t>> segment_vcs(
    const std::vector<std::vector<NodeId>>& paths, std::uint32_t vcs,
    const LevelDelta& level_delta) {
  BFLY_CHECK(vcs >= 1, "vcs must be >= 1");
  std::vector<std::vector<std::uint32_t>> out(paths.size());
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const auto& path = paths[p];
    out[p].resize(path.empty() ? 0 : path.size() - 1);
    std::uint32_t seg = 0;
    int prev = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const int d = level_delta(path[i], path[i + 1]);
      if (prev != 0 && d != prev) ++seg;
      prev = d;
      out[p][i] = std::min(seg, vcs - 1);
    }
  }
  return out;
}

}  // namespace

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniform:
      return "uniform";
    case TrafficPattern::kBitReversal:
      return "bitrev";
    case TrafficPattern::kTranspose:
      return "transpose";
    case TrafficPattern::kHotspot:
      return "hotspot";
    case TrafficPattern::kCutSaturating:
      return "cutsat";
  }
  return "?";
}

TrafficSpec parse_traffic_spec(std::string_view text) {
  TrafficSpec spec;
  std::string_view rest = text;
  const auto take = [&]() -> std::string_view {
    const std::size_t colon = rest.find(':');
    std::string_view tok = rest.substr(0, colon);
    rest = colon == std::string_view::npos ? std::string_view{}
                                           : rest.substr(colon + 1);
    return tok;
  };

  const std::string_view pat = take();
  if (pat == "uniform") {
    spec.pattern = TrafficPattern::kUniform;
  } else if (pat == "bitrev") {
    spec.pattern = TrafficPattern::kBitReversal;
  } else if (pat == "transpose") {
    spec.pattern = TrafficPattern::kTranspose;
  } else if (pat == "hotspot") {
    spec.pattern = TrafficPattern::kHotspot;
  } else if (pat == "cutsat") {
    spec.pattern = TrafficPattern::kCutSaturating;
  } else {
    spec_error(text, "unknown pattern \"" + std::string(pat) + "\"");
  }

  SpecCounts seen;
  while (!rest.empty() || text.back() == ':') {
    if (rest.empty()) spec_error(text, "trailing field separator");
    const std::string_view field = take();
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      spec_error(text, "field \"" + std::string(field) + "\" is not key=value");
    }
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    if (key == "ppn") {
      if (seen.ppn) spec_error(text, "duplicate ppn");
      seen.ppn = true;
      spec.packets_per_node =
          static_cast<std::uint32_t>(parse_u64(text, key, value, 4096));
      if (spec.packets_per_node == 0) spec_error(text, "ppn out of range");
    } else if (key == "seed") {
      if (seen.seed) spec_error(text, "duplicate seed");
      seen.seed = true;
      spec.seed = parse_u64(text, key, value, ~0ull);
    } else if (key == "hot") {
      if (seen.hot) spec_error(text, "duplicate hot");
      if (spec.pattern != TrafficPattern::kHotspot) {
        spec_error(text, "hot= only applies to the hotspot pattern");
      }
      seen.hot = true;
      spec.hotspot_percent =
          static_cast<std::uint32_t>(parse_u64(text, key, value, 100));
    } else {
      spec_error(text, "unknown field \"" + std::string(key) + "\"");
    }
  }
  return spec;
}

std::string to_string(const TrafficSpec& spec) {
  std::string out = to_string(spec.pattern);
  out += ":ppn=" + std::to_string(spec.packets_per_node);
  out += ":seed=" + std::to_string(spec.seed);
  if (spec.pattern == TrafficPattern::kHotspot) {
    out += ":hot=" + std::to_string(spec.hotspot_percent);
  }
  return out;
}

TrafficSet make_traffic(const topo::Butterfly& bf, const TrafficSpec& spec,
                        const std::vector<std::uint8_t>* witness_sides) {
  return generate(bf, spec, witness_sides, bf.node(0, bf.dims()),
                  bf.node(0, bf.dims()),
                  [&](NodeId s, NodeId d) { return route_bn(bf, s, d); });
}

TrafficSet make_traffic(const topo::WrappedButterfly& wb,
                        const TrafficSpec& spec,
                        const std::vector<std::uint8_t>* witness_sides) {
  return generate(wb, spec, witness_sides, wb.node(0, 0), wb.node(0, 0),
                  [&](NodeId s, NodeId d) { return route_wn(wb, s, d); });
}

std::vector<std::vector<std::uint32_t>> stage_weighted_vcs(
    const topo::Butterfly& bf, const std::vector<std::vector<NodeId>>& paths,
    std::uint32_t vcs) {
  return segment_vcs(paths, vcs, [&](NodeId u, NodeId v) {
    return bf.level(v) > bf.level(u) ? 1 : -1;
  });
}

std::vector<std::vector<std::uint32_t>> stage_weighted_vcs(
    const topo::WrappedButterfly& wb,
    const std::vector<std::vector<NodeId>>& paths, std::uint32_t vcs) {
  // Wrap-aware: a hop to level (l+1) mod dims descends, anything else
  // (including the wrap edge taken backwards) ascends toward level 0.
  const std::uint32_t levels = wb.num_levels();
  return segment_vcs(paths, vcs, [&, levels](NodeId u, NodeId v) {
    return wb.level(v) == (wb.level(u) + 1) % levels ? 1 : -1;
  });
}

BoundReport traffic_bound(const TrafficSet& t, std::size_t bw,
                          std::size_t max_link_load) {
  BFLY_CHECK(bw > 0, "bisection width must be positive");
  BoundReport rep;
  rep.c14_bound = static_cast<double>(t.paths.size()) /
                  (4.0 * static_cast<double>(bw));
  rep.cut_bound = static_cast<double>(std::max(t.cross_ab, t.cross_ba)) /
                  static_cast<double>(bw);
  rep.max_hops = t.max_hops;
  rep.congestion_bound = max_link_load;
  rep.lower_bound = std::max(
      {rep.cut_bound, static_cast<double>(rep.max_hops),
       static_cast<double>(rep.congestion_bound)});
  return rep;
}

}  // namespace bfly::routing
