// Oblivious node-to-node routes on butterflies: the classic bit-fixing
// scheme through level 0 / level log n, as used by the paper's Theorem
// 4.3 embedding and by butterfly-based parallel machines.
#pragma once

#include <vector>

#include "core/types.hpp"
#include "topology/butterfly.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::routing {

/// Route in Bn: up the source column to level 0, monotonic bit-fixing
/// descent to <dst column, log n>, then up the destination column.
[[nodiscard]] std::vector<NodeId> route_bn(const topo::Butterfly& bf,
                                           NodeId src, NodeId dst);

/// Route in Wn: the Theorem 4.3 three-segment route (up to level 0,
/// a full wrap of bit fixing, down to the destination level).
[[nodiscard]] std::vector<NodeId> route_wn(const topo::WrappedButterfly& wb,
                                           NodeId src, NodeId dst);

}  // namespace bfly::routing
