// Constructive certificates for Lemmas 2.5 and 2.8.
//
// Lemma 2.5: partition level 0 of Bn into I (even columns) and O (odd
// columns); give each I node two input ports and each O node two output
// ports. For ANY bijection of input ports onto output ports there are n
// pairwise edge-disjoint paths realizing it. We construct them by
// routing the bijection through Beneš_{log n - 1} (Waksman two-port
// looping) and folding the result through the congestion-1 embedding of
// the Beneš into Bn.
//
// Lemma 2.8's capacity argument: for any cut (A, Ā) of Bn with
// |Ā ∩ L0| <= |A ∩ L0|, a port bijection can be chosen so that
// 2|Ā ∩ L0| of the paths have endpoints on opposite sides — each
// crosses the cut at least once, and edge-disjointness then certifies
// C(A, Ā) >= 2|Ā ∩ L0|.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "topology/butterfly.hpp"

namespace bfly::routing {

/// Edge-disjoint butterfly paths realizing a bijection of the n input
/// ports (port 2c+slot belongs to I node <2c, 0>) onto the n output
/// ports (port 2c+slot belongs to O node <2c+1, 0>). n = bf.n() must be
/// >= 4. Every returned path starts at an even column of level 0 and
/// ends at an odd column of level 0.
[[nodiscard]] std::vector<std::vector<NodeId>> lemma25_paths(
    const topo::Butterfly& bf, std::span<const std::uint32_t> port_perm);

struct Lemma28Certificate {
  std::size_t minority_level0 = 0;  ///< |Ā ∩ L0| (the smaller side)
  std::size_t crossing_paths = 0;   ///< paths with endpoints on both sides
  std::size_t cut_capacity = 0;     ///< C(A, Ā) of the given cut
  bool edge_disjoint = false;    ///< certificate validity
  /// The straddling paths themselves.
  std::vector<std::vector<NodeId>> paths;
};

/// Builds the Lemma 2.8 lower-bound certificate for an arbitrary cut:
/// chooses the port bijection of the lemma's proof, routes it, and
/// returns the 2|Ā ∩ L0| edge-disjoint straddling paths (so that
/// cut_capacity >= crossing_paths always holds).
[[nodiscard]] Lemma28Certificate lemma28_certificate(
    const topo::Butterfly& bf, const std::vector<std::uint8_t>& sides);

}  // namespace bfly::routing
