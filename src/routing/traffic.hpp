// Traffic scenarios for the phase-driven simulator (EXPERIMENTS.md E25).
//
// A TrafficSpec is a small, string-parseable description of a workload
// ("uniform:ppn=16:seed=7"); make_traffic() expands it into concrete
// packet paths on a butterfly via the oblivious routes of
// butterfly_routing.hpp. Five patterns:
//
//   uniform   — every node sends ppn packets to uniformly random nodes
//               (the paper's Section 1.2 random-destination workload);
//   bitrev    — column c at level 0 sends ppn packets to the
//               bit-reversed column at the far level (the classic FFT
//               permutation, worst case for oblivious routing);
//   transpose — column (hi, lo) sends to column (lo, hi) (bits rotated
//               by dims/2), level 0 to far level;
//   hotspot   — uniform, except hot% of packets target one hotspot
//               node, modelling a contended server;
//   cutsat    — adversarial cut-saturating traffic: every node sends
//               ppn packets to a random node on the OPPOSITE side of a
//               witness bisection (read straight from a solver
//               CutResult), so nearly every packet must cross the cut
//               and the N/(4·BW) gesture tightens to a per-instance
//               bound of max(crossings per direction)/BW.
//
// The generator counts the actual per-direction cut crossings while it
// builds the paths, and traffic_bound() turns them into the strongest
// lower bound the repo can certify for the instance:
//
//   makespan >= max( cross_ab/BW, cross_ba/BW, longest path )
//
// alongside the paper's C14 figure num_packets/(4·BW). Slowdown in the
// benches is makespan divided by that C14 figure.
//
// stage_weighted_vcs() assigns each hop the index of its monotone level
// segment (wrap-aware for Wn), capped at vcs-1 — the Butterfly-Railway
// stage-weighting that makes bounded-capacity virtual-channel configs
// deadlock-free: within a VC class the queue dependency order follows
// strictly monotone levels, and packets only ever move to a higher
// class, so the combined dependency graph is acyclic.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"
#include "topology/butterfly.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::routing {

enum class TrafficPattern : std::uint8_t {
  kUniform,
  kBitReversal,
  kTranspose,
  kHotspot,
  kCutSaturating,
};

[[nodiscard]] const char* to_string(TrafficPattern p);

/// Thrown by parse_traffic_spec on malformed input. Distinct from
/// PreconditionError so untrusted-config callers (the service layer,
/// fuzzers) can treat "bad spec text" as data, not a contract violation.
class TrafficError : public std::runtime_error {
 public:
  explicit TrafficError(const std::string& what) : std::runtime_error(what) {}
};

struct TrafficSpec {
  TrafficPattern pattern = TrafficPattern::kUniform;
  /// Packets injected per source node (uniform/hotspot/cutsat: every
  /// node; bitrev/transpose: every level-0 node).
  std::uint32_t packets_per_node = 1;
  std::uint64_t seed = 1;
  /// Percentage of packets aimed at the hotspot (hotspot pattern only).
  std::uint32_t hotspot_percent = 50;
};

/// Parses "pattern[:ppn=<u32>][:seed=<u64>][:hot=<u32>]". Patterns:
/// uniform, bitrev, transpose, hotspot, cutsat. Throws TrafficError on
/// unknown pattern/key, malformed or duplicate fields, ppn outside
/// [1, 4096], or hot outside [0, 100]. parse(to_string(s)) == s.
[[nodiscard]] TrafficSpec parse_traffic_spec(std::string_view text);
[[nodiscard]] std::string to_string(const TrafficSpec& spec);

struct TrafficSet {
  std::vector<std::vector<NodeId>> paths;
  /// Packets whose source is on side 0 / destination on side 1 of the
  /// witness cut and vice versa (both 0 when no witness was supplied).
  std::size_t cross_ab = 0;
  std::size_t cross_ba = 0;
  std::size_t max_hops = 0;  ///< longest path, in edges
};

/// Expands a spec into packet paths on Bn via route_bn. `witness_sides`
/// (a 0/1 side per node, e.g. CutResult::sides) is required for cutsat
/// and optional otherwise; when present, per-direction crossings are
/// counted against it. Throws PreconditionError on a missing/mis-sized
/// witness or a one-sided cut.
[[nodiscard]] TrafficSet make_traffic(
    const topo::Butterfly& bf, const TrafficSpec& spec,
    const std::vector<std::uint8_t>* witness_sides = nullptr);

/// Same on Wn via route_wn (bitrev/transpose map level-0 nodes to the
/// permuted column at level 0; routes take the full wrap).
[[nodiscard]] TrafficSet make_traffic(
    const topo::WrappedButterfly& wb, const TrafficSpec& spec,
    const std::vector<std::uint8_t>* witness_sides = nullptr);

/// Stage-weighted virtual channels: hop_vcs[p][i] = index of the i-th
/// hop's monotone level segment within path p, capped at vcs - 1.
/// Feed to SimEngine::load(paths, hop_vcs) for deadlock-free bounded
/// capacities. vcs must be >= 1.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> stage_weighted_vcs(
    const topo::Butterfly& bf, const std::vector<std::vector<NodeId>>& paths,
    std::uint32_t vcs);
[[nodiscard]] std::vector<std::vector<std::uint32_t>> stage_weighted_vcs(
    const topo::WrappedButterfly& wb,
    const std::vector<std::vector<NodeId>>& paths, std::uint32_t vcs);

/// Lower bounds for routing a TrafficSet across a bisection of width bw.
struct BoundReport {
  /// The paper's C14 figure num_packets / (4·BW) — exact in expectation
  /// for uniform traffic, reported for every scenario as the slowdown
  /// denominator.
  double c14_bound = 0.0;
  /// Per-instance directional cut bound max(cross_ab, cross_ba) / BW:
  /// each of the bw cut edges forwards at most one packet per direction
  /// per step. 0 when the set carries no witness crossings.
  double cut_bound = 0.0;
  std::size_t max_hops = 0;
  /// Static congestion bound: a directed link carrying L compiled hops
  /// needs at least L steps. Pass EngineStats::max_link_load (0 skips).
  /// With bit-fixing routes and a single-boundary witness cut this is
  /// the tight one: every A->B packet from a column funnels through
  /// that column's single cut edge, so only the witness-side half of
  /// the cut edges can serve a direction and congestion sits at ~2x
  /// the directional cut bound.
  std::size_t congestion_bound = 0;
  /// max(cut_bound, max_hops, congestion_bound): every makespan must
  /// dominate this — a violation is a simulator bug, asserted by tests
  /// and benches.
  double lower_bound = 0.0;
};

[[nodiscard]] BoundReport traffic_bound(const TrafficSet& t, std::size_t bw,
                                        std::size_t max_link_load = 0);

}  // namespace bfly::routing
