#include "routing/experiments.hpp"

#include "core/error.hpp"
#include "core/rng.hpp"

namespace bfly::routing {

RandomRouteReport random_destination_experiment(
    const Graph& g,
    const std::function<std::vector<NodeId>(NodeId, NodeId)>& route,
    const std::vector<std::uint8_t>& bisection_sides, std::size_t bw,
    std::uint64_t seed) {
  BFLY_CHECK(bisection_sides.size() == g.num_nodes(),
             "bisection side vector size mismatch");
  Rng rng(seed);
  const NodeId n = g.num_nodes();

  RandomRouteReport rep;
  rep.num_packets = n;
  std::vector<std::vector<NodeId>> paths;
  paths.reserve(n);
  for (NodeId src = 0; src < n; ++src) {
    const NodeId dst = static_cast<NodeId>(rng.below(n));
    if (bisection_sides[src] != bisection_sides[dst]) ++rep.cross_bisection;
    paths.push_back(route(src, dst));
  }
  rep.sim = simulate_store_and_forward(g, paths);
  rep.bisection_time_bound =
      static_cast<double>(n) / (4.0 * static_cast<double>(bw));
  return rep;
}

}  // namespace bfly::routing
