#include "cert/superconcentration.hpp"

#include <numeric>

#include "algo/maxflow.hpp"
#include "core/error.hpp"
#include "core/math_util.hpp"
#include "core/rng.hpp"

namespace bfly::cert {
namespace {

// C(2n, n) - 1, the size of the full superconcentration query family,
// saturated at `cap` (so callers can compare without overflow).
std::uint64_t query_family_size(std::uint64_t n, std::uint64_t cap) {
  unsigned __int128 c = 1;
  for (std::uint64_t i = 1; i <= n; ++i) {
    c = c * (n + i) / i;  // exact: c is always a binomial prefix
    if (c > cap) return cap + 1;
  }
  return static_cast<std::uint64_t>(c - 1);
}

// Next k-subset bitmask in colex order (Gosper's hack).
std::uint64_t next_subset(std::uint64_t mask) {
  const std::uint64_t low = mask & (~mask + 1);
  const std::uint64_t ripple = mask + low;
  return ripple | (((mask ^ ripple) >> 2) / low);
}

}  // namespace

ConcatenatedButterflyPair concatenated_butterfly_pair(std::uint32_t n) {
  BFLY_CHECK(n >= 2, "butterfly pair needs at least 2 columns");
  ConcatenatedButterflyPair pair;
  pair.n = n;
  pair.dims = log2_exact(n);
  const std::uint32_t d = pair.dims;
  GraphBuilder gb(n * (2 * d + 1));
  const auto id = [n](std::uint32_t col, std::uint32_t lvl) {
    return static_cast<NodeId>(lvl * n + col);
  };
  for (std::uint32_t lvl = 0; lvl < 2 * d; ++lvl) {
    // First half crosses bits d-1..0, second half 0..d-1: the second
    // butterfly is the mirror image of the first, glued at level d.
    const std::uint32_t bit = lvl < d ? d - 1 - lvl : lvl - d;
    for (std::uint32_t w = 0; w < n; ++w) {
      gb.add_edge(id(w, lvl), id(w, lvl + 1));
      gb.add_edge(id(w, lvl), id(w ^ (1u << bit), lvl + 1));
    }
  }
  pair.graph = std::move(gb).build();
  pair.inputs.reserve(n);
  pair.outputs.reserve(n);
  for (std::uint32_t w = 0; w < n; ++w) {
    pair.inputs.push_back(id(w, 0));
    pair.outputs.push_back(id(w, 2 * d));
  }
  return pair;
}

SuperconcentrationCertificate certify_superconcentration(
    const Graph& g, std::span<const NodeId> inputs,
    std::span<const NodeId> outputs, const SuperconcOptions& opts) {
  const std::size_t n_io = inputs.size();
  BFLY_CHECK(n_io >= 1 && n_io == outputs.size(),
             "need equally many inputs and outputs");
  std::vector<char> seen(g.num_nodes(), 0);
  for (const NodeId v : inputs) {
    BFLY_CHECK(v < g.num_nodes() && !seen[v], "terminals must be distinct");
    seen[v] = 1;
  }
  for (const NodeId v : outputs) {
    BFLY_CHECK(v < g.num_nodes() && !seen[v], "terminals must be distinct");
    seen[v] = 1;
  }

  algo::NodeSplitNetwork ns =
      algo::make_node_split_network(g, 1, opts.packed_bfs_node_limit);
  const auto wire = [&](std::span<const NodeId> io, std::uint64_t mask,
                        bool sources) {
    for (std::size_t i = 0; i < io.size(); ++i) {
      const std::int64_t cap = (mask >> i) & 1u;
      ns.net.set_capacity(
          sources ? ns.source_arc(io[i]) : ns.sink_arc(io[i]), cap);
    }
  };
  const auto query = [&](std::uint64_t amask, std::uint64_t bmask,
                         std::int64_t k, SuperconcentrationCertificate& cert) {
    ns.net.reset();
    wire(inputs, amask, /*sources=*/true);
    wire(outputs, bmask, /*sources=*/false);
    ++cert.queries;
    // Source caps sum to k, so flow <= k; == k iff the k disjoint
    // paths exist (Menger).
    if (ns.net.max_flow(ns.source(), ns.sink()) < k) ++cert.failures;
  };

  SuperconcentrationCertificate cert;
  const std::uint64_t family =
      n_io <= 32 ? query_family_size(n_io, opts.max_exhaustive_queries)
                 : opts.max_exhaustive_queries + 1;
  if (family <= opts.max_exhaustive_queries) {
    cert.exhaustive = true;
    const std::uint64_t limit = 1ull << n_io;
    for (std::size_t k = 1; k <= n_io; ++k) {
      const std::uint64_t first = (1ull << k) - 1;
      for (std::uint64_t amask = first; amask < limit;
           amask = next_subset(amask)) {
        for (std::uint64_t bmask = first; bmask < limit;
             bmask = next_subset(bmask)) {
          query(amask, bmask, static_cast<std::int64_t>(k), cert);
        }
        if (amask == limit - (limit >> k)) break;  // last k-subset
      }
    }
    BFLY_ASSERT_MSG(cert.queries == family, "query family miscounted");
  } else {
    Rng rng(opts.seed);
    std::vector<std::size_t> in_idx(n_io), out_idx(n_io);
    std::iota(in_idx.begin(), in_idx.end(), 0u);
    std::iota(out_idx.begin(), out_idx.end(), 0u);
    for (std::uint64_t q = 0; q < opts.samples; ++q) {
      const auto k = static_cast<std::size_t>(1 + rng.below(n_io));
      shuffle(in_idx, rng);
      shuffle(out_idx, rng);
      std::uint64_t amask = 0, bmask = 0;
      for (std::size_t i = 0; i < k; ++i) {
        amask |= 1ull << in_idx[i];
        bmask |= 1ull << out_idx[i];
      }
      query(amask, bmask, static_cast<std::int64_t>(k), cert);
    }
  }
  cert.certified = cert.failures == 0;
  return cert;
}

}  // namespace bfly::cert
