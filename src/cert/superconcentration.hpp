// Superconcentration certificates on concatenated butterfly pairs
// (arXiv 1401.7263, "Superconcentration on a Pair of Butterflies").
//
// An n-superconcentrator provides, for EVERY k and every pair of
// k-subsets A of the inputs and B of the outputs, k fully vertex-
// disjoint A–B paths. That is a family of max-flow statements on the
// node-split network: flow(A -> B) == k with unit node capacities.
// certify_superconcentration discharges the family — exhaustively when
// the query count sum_k C(n,k)^2 = C(2n,n) - 1 is affordable, by seeded
// random sampling otherwise — reusing ONE node-split network across all
// queries via reset() + terminal re-wiring.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::cert {

/// Two n-column butterflies sharing their middle level: levels 0..d
/// cross machine bits d-1..0 and levels d..2d cross bits 0..d-1 (the
/// mirror image), so each half is a full butterfly and the whole is the
/// Benes-style pair of arXiv 1401.7263. Inputs are level 0, outputs
/// level 2d; node ids are level-major like topo::Butterfly.
struct ConcatenatedButterflyPair {
  Graph graph;
  std::uint32_t n = 0;     ///< columns (= inputs = outputs), a power of two
  std::uint32_t dims = 0;  ///< d = log2 n; 2d + 1 levels
  std::vector<NodeId> inputs;
  std::vector<NodeId> outputs;
};

[[nodiscard]] ConcatenatedButterflyPair concatenated_butterfly_pair(
    std::uint32_t n);

struct SuperconcOptions {
  /// Run the full query family when its size C(2n,n) - 1 is at most
  /// this; otherwise fall back to seeded sampling. The default admits
  /// n = 8 (12869 queries) but not n = 16.
  std::uint64_t max_exhaustive_queries = 1ull << 14;
  /// Query count in sampling mode (uniform k, then uniform k-subsets).
  std::uint64_t samples = 128;
  std::uint64_t seed = 1;
  /// Passed through to the node-split network (see CertOptions).
  NodeId packed_bfs_node_limit = 24576;
};

struct SuperconcentrationCertificate {
  std::uint64_t queries = 0;
  std::uint64_t failures = 0;  ///< queries with flow < k
  bool exhaustive = false;     ///< true: `certified` is a proof, not evidence
  bool certified = false;      ///< failures == 0
};

/// Certifies k vertex-disjoint paths between every (sampled) pair of
/// k-subsets of `inputs` and `outputs`. Inputs and outputs must be
/// duplicate-free, equal-length, and disjoint from each other.
[[nodiscard]] SuperconcentrationCertificate certify_superconcentration(
    const Graph& g, std::span<const NodeId> inputs,
    std::span<const NodeId> outputs, const SuperconcOptions& opts = {});

}  // namespace bfly::cert
