#include "cert/expansion_certificate.hpp"

#include <vector>

#include "algo/maxflow.hpp"
#include "core/error.hpp"

namespace bfly::cert {
namespace {

// Membership flags for `set` with duplicates collapsed; throws on
// out-of-range nodes, returns the distinct count.
std::size_t membership(const Graph& g, std::span<const NodeId> set,
                       std::vector<char>& in_set) {
  in_set.assign(g.num_nodes(), 0);
  std::size_t distinct = 0;
  for (const NodeId v : set) {
    BFLY_CHECK(v < g.num_nodes(), "witness node out of range");
    distinct += 1 - in_set[v];
    in_set[v] = 1;
  }
  return distinct;
}

}  // namespace

EdgeBoundaryCertificate certify_edge_boundary(const Graph& g,
                                              std::span<const NodeId> set,
                                              std::int64_t claimed,
                                              const CertOptions& opts) {
  const NodeId n = g.num_nodes();
  std::vector<char> in_set;
  const std::size_t members = membership(g, set, in_set);
  BFLY_CHECK(members > 0 && members < n,
             "edge-boundary witness must be a nonempty proper subset");
  algo::FlowNetwork net(n + 2);
  const NodeId s = n, t = n + 1;
  // Parallel edges collapse into one arc pair of capacity = multiplicity
  // (the packed-BFS one-arc-per-ordered-pair rule); capacity on both
  // sides since either endpoint may sit in S.
  for (NodeId u = 0; u < n; ++u) {
    const auto nb = g.neighbors(u);
    for (std::size_t i = 0; i < nb.size();) {
      const NodeId v = nb[i];
      std::size_t mult = 1;
      while (i + mult < nb.size() && nb[i + mult] == v) ++mult;
      if (v > u) {
        const auto cap = static_cast<std::int64_t>(mult);
        net.add_arc(u, v, cap, cap);
      }
      i += mult;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (in_set[v]) {
      net.add_arc(s, v, algo::kUnboundedCapacity);
    } else {
      net.add_arc(v, t, algo::kUnboundedCapacity);
    }
  }
  if (n + 2 <= opts.packed_bfs_node_limit) net.enable_packed_bfs();
  EdgeBoundaryCertificate cert;
  cert.claimed = claimed;
  // The unbounded terminal arcs pin S to the source side and V \ S to
  // the sink side, so the unique finite cut is the partition (S, V \ S)
  // itself: the flow value IS |∂S|, independently of how the witness
  // was produced.
  cert.flow = net.max_flow(s, t);
  cert.certified = cert.flow == claimed;
  return cert;
}

NodeBoundaryCertificate certify_node_boundary(const Graph& g,
                                              std::span<const NodeId> set,
                                              std::int64_t claimed,
                                              const CertOptions& opts) {
  const NodeId n = g.num_nodes();
  std::vector<char> in_set;
  const std::size_t members = membership(g, set, in_set);
  BFLY_CHECK(members > 0 && members < n,
             "node-boundary witness must be a nonempty proper subset");
  // 0 = S, 1 = N(S), 2 = B.
  std::vector<char> side(n, 2);
  for (NodeId v = 0; v < n; ++v) {
    if (in_set[v]) side[v] = 0;
  }
  NodeBoundaryCertificate cert;
  cert.claimed = claimed;
  for (NodeId u = 0; u < n; ++u) {
    if (side[u] != 0) continue;
    for (const NodeId v : g.neighbors(u)) {
      if (side[v] == 2) {
        side[v] = 1;
        ++cert.recounted;
      }
    }
  }
  const auto b_count = static_cast<std::int64_t>(n - members) - cert.recounted;
  if (b_count == 0) {
    // S ∪ N(S) = V: nothing to separate; |N(S)| = n - |S| is forced.
    cert.flow = cert.recounted;
    cert.tight = true;
    cert.certified = cert.recounted == claimed;
    return cert;
  }
  algo::NodeSplitNetwork ns =
      algo::make_node_split_network(g, 1, opts.packed_bfs_node_limit);
  // Make S and B uncuttable (unbounded split arcs) and attach the
  // terminals through them, leaving exactly the candidate separator
  // nodes — N(S) and beyond — with unit splits.
  for (NodeId v = 0; v < n; ++v) {
    if (side[v] == 0) {
      ns.net.set_capacity(ns.source_arc(v), algo::kUnboundedCapacity);
      ns.net.set_capacity(ns.split_arc(v), algo::kUnboundedCapacity);
    } else if (side[v] == 2) {
      ns.net.set_capacity(ns.sink_arc(v), algo::kUnboundedCapacity);
      ns.net.set_capacity(ns.split_arc(v), algo::kUnboundedCapacity);
    }
  }
  cert.flow = ns.net.max_flow(ns.source(), ns.sink());
  cert.tight = cert.flow == cert.recounted;
  cert.certified = cert.recounted == claimed && cert.flow <= cert.recounted;
  return cert;
}

ExpansionClassBound expansion_class_bounds(const Graph& g) {
  ExpansionClassBound bound;
  bound.kappa = algo::vertex_connectivity(g);
  bound.lambda = algo::edge_connectivity(g);
  return bound;
}

std::int64_t node_expansion_class_bound(const ExpansionClassBound& bound,
                                        NodeId n, std::size_t k) {
  BFLY_CHECK(k >= 1 && k < n, "size class must satisfy 1 <= k < n");
  const auto rest = static_cast<std::int64_t>(n - k);
  return bound.kappa < rest ? bound.kappa : rest;
}

std::int64_t edge_expansion_class_bound(const ExpansionClassBound& bound) {
  return bound.lambda;
}

}  // namespace bfly::cert
