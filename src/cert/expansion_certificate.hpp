// Flow-based certification of expansion claims (ROADMAP item 5).
//
// The exhaustive sweeps of src/expansion/ prove EE/NE exactly but stop
// near 26 nodes; beyond that the repo emits heuristic witnesses (FM,
// multilevel, spectral) whose values are unchecked. This header turns
// every such witness into a checkable claim via max-flow = min-cut:
//
//   * certify_edge_boundary: for a witness set S, the maximum flow from
//     a super-source wired to S into a super-sink wired to V \ S (edge
//     capacities = multiplicities, terminal arcs unbounded) admits
//     exactly one finite cut — the partition (S, V \ S) itself — so the
//     flow value EQUALS |∂S|. Agreement with the claimed value is an
//     independent, certified recount; disagreement rejects a corrupted
//     witness.
//   * certify_node_boundary: with S and B = V \ (S ∪ N(S)) made
//     uncuttable in the Hong–Kung node-split network, the max flow is
//     the Menger minimum S–B vertex separator. N(S) is such a
//     separator, so flow <= |N(S)| always, and flow == |N(S)| certifies
//     N(S) as a MINIMUM separator (the `tight` flag).
//   * expansion_class_bounds: certified lower bounds for a whole size
//     class at once — every nonempty proper S has |∂S| >= lambda(G) by
//     definition of edge connectivity, and every S with
//     S ∪ N(S) != V has |N(S)| >= kappa(G) (N(S) separates S from the
//     rest), else |N(S)| = n - |S|; hence NE(G, k) >= min(kappa, n - k).
//
// All certificates run on the reusable FlowNetwork with the packed
// bitset level phase, so they scale to B1024-sized instances.
#pragma once

#include <cstdint>
#include <span>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::cert {

struct CertOptions {
  /// Enable the packed (bitset) Dinic level phase when the certification
  /// network has at most this many nodes (0 = never). Packed rows cost
  /// nodes^2 / 8 bytes; the default admits B1024 (11264 graph nodes ->
  /// a 22530-node split network, ~63 MiB) and stays well clear of
  /// accidental gigabyte allocations.
  NodeId packed_bfs_node_limit = 24576;
};

/// Certificate for a claimed edge-boundary value |∂S|.
struct EdgeBoundaryCertificate {
  std::int64_t claimed = 0;  ///< the value under certification
  std::int64_t flow = 0;     ///< max flow S -> V \ S; equals |∂S| exactly
  bool certified = false;    ///< flow == claimed
};

/// Certifies the claim |∂set| == claimed. `set` must be a nonempty
/// proper subset of the nodes (duplicates collapse).
[[nodiscard]] EdgeBoundaryCertificate certify_edge_boundary(
    const Graph& g, std::span<const NodeId> set, std::int64_t claimed,
    const CertOptions& opts = {});

/// Certificate for a claimed node-boundary value |N(S)|.
struct NodeBoundaryCertificate {
  std::int64_t claimed = 0;    ///< the value under certification
  std::int64_t recounted = 0;  ///< |N(S)| by direct recount
  std::int64_t flow = 0;       ///< Menger minimum S–B vertex separator
  bool certified = false;      ///< recounted == claimed (and flow <= it)
  /// flow == |N(S)|: the witness boundary is a MINIMUM S–B separator.
  /// Witnesses from exact sweeps are usually tight; a heuristic witness
  /// that is not tight is provably improvable. Degenerate case
  /// S ∪ N(S) = V (no B side): flow is set to the recount and the
  /// bound |N(S)| = n - |S| is attained, reported tight.
  bool tight = false;
};

/// Certifies the claim |N(set)| == claimed; see NodeBoundaryCertificate.
[[nodiscard]] NodeBoundaryCertificate certify_node_boundary(
    const Graph& g, std::span<const NodeId> set, std::int64_t claimed,
    const CertOptions& opts = {});

/// Certified class-wide expansion lower bounds: kappa = vertex
/// connectivity, lambda = edge connectivity (both exact, via Even's
/// flow algorithm / pivot flows on reused networks).
struct ExpansionClassBound {
  std::int64_t kappa = 0;
  std::int64_t lambda = 0;
};

[[nodiscard]] ExpansionClassBound expansion_class_bounds(const Graph& g);

/// NE(G, k) >= min(kappa, n - k) for every 1 <= k < n.
[[nodiscard]] std::int64_t node_expansion_class_bound(
    const ExpansionClassBound& bound, NodeId n, std::size_t k);

/// EE(G, k) >= lambda for every 1 <= k < n.
[[nodiscard]] std::int64_t edge_expansion_class_bound(
    const ExpansionClassBound& bound);

}  // namespace bfly::cert
