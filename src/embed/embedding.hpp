// Network embeddings (paper Section 1.4).
//
// An embedding maps guest nodes to host nodes and guest edges to host
// paths. Its load is the max number of guest nodes on one host node, its
// congestion the max number of paths through one host edge, its dilation
// the longest path length. The paper derives all its lower bounds on
// bisection width and expansion from embeddings of complete graphs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::embed {

struct Embedding {
  /// Host image of each guest node.
  std::vector<NodeId> node_map;
  /// Host path (inclusive node sequence) of each guest edge, indexed by
  /// guest edge id. A path must start/end at the mapped endpoints (in
  /// either order) and follow host edges.
  std::vector<std::vector<NodeId>> paths;
};

struct EmbeddingMetrics {
  std::size_t load = 0;
  std::size_t congestion = 0;
  std::size_t dilation = 0;
  /// Congestion per host edge pair {u,v} (parallel host edges are pooled),
  /// indexed like host adjacency; exposed for the lower-bound calculators.
  std::vector<std::size_t> edge_use;  ///< indexed by host edge id of the
                                      ///< first parallel edge
};

/// Validates the embedding (every path connects its guest edge's mapped
/// endpoints through genuine host edges) and measures load, congestion,
/// and dilation. Throws PreconditionError on malformed embeddings.
///
/// Congestion counting pools parallel host edges: a {u,v} host connection
/// of multiplicity m counts ceil(use / m) toward the congestion, matching
/// the capacity interpretation.
[[nodiscard]] EmbeddingMetrics measure_embedding(const Graph& guest,
                                                 const Graph& host,
                                                 const Embedding& e);

/// Deep self-check: re-measures the embedding from scratch and checks the
/// recounted load/congestion/dilation against previously computed metrics.
/// Throws PreconditionError on a malformed embedding or any mismatch.
void validate_embedding(const Graph& guest, const Graph& host,
                        const Embedding& e, const EmbeddingMetrics& m);

}  // namespace bfly::embed
