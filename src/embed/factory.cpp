#include "embed/factory.hpp"

#include <algorithm>
#include <bit>

#include "core/error.hpp"
#include "core/math_util.hpp"
#include "topology/benes.hpp"
#include "topology/complete.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh_of_stars.hpp"

namespace bfly::embed {

namespace {

// Straight walk within one column of a leveled network, from level `from`
// to level `to`, appended to `path` (excluding the node at `from`,
// which the caller already appended). Steps of +-1; `wrap` applies mod-d
// arithmetic going downward only for the wrapped monotonic segments,
// which never occur here (segments 1 and 3 move strictly within 0..d).
template <typename Net>
void walk_column(const Net& net, std::uint32_t col, std::uint32_t from,
                 std::uint32_t to, std::vector<NodeId>& path) {
  while (from != to) {
    from = to > from ? from + 1 : from - 1;
    path.push_back(net.node(col, from));
  }
}

}  // namespace

EmbeddingCase knn_into_bn(const topo::Butterfly& bf) {
  const std::uint32_t n = bf.n();
  EmbeddingCase out;
  out.name = "K_{n,n}->Bn (Lemma 3.1)";
  out.guest = topo::complete_bipartite(n, n);
  out.host = bf.graph();
  out.emb.node_map.resize(out.guest.num_nodes());
  for (std::uint32_t i = 0; i < n; ++i) {
    out.emb.node_map[i] = bf.node(i, 0);            // left side -> inputs
    out.emb.node_map[n + i] = bf.node(i, bf.dims());  // right -> outputs
  }
  out.emb.paths.reserve(out.guest.num_edges());
  for (EdgeId e = 0; e < out.guest.num_edges(); ++e) {
    const auto [u, v] = out.guest.edge(e);  // u < n <= v
    out.emb.paths.push_back(bf.monotonic_path(u, v - n));
  }
  return out;
}

EmbeddingCase kn_into_wn(const topo::WrappedButterfly& wb) {
  const std::uint32_t n = wb.n();
  const std::uint32_t d = wb.dims();
  EmbeddingCase out;
  out.name = "K_N->Wn (Theorem 4.3)";
  out.guest = topo::complete_graph(wb.num_nodes());
  out.host = wb.graph();
  out.emb.node_map.resize(out.guest.num_nodes());
  for (NodeId v = 0; v < out.guest.num_nodes(); ++v) {
    out.emb.node_map[v] = v;  // identity (same id layout)
  }
  out.emb.paths.reserve(out.guest.num_edges());
  for (EdgeId e = 0; e < out.guest.num_edges(); ++e) {
    const auto [gu, gv] = out.guest.edge(e);
    const std::uint32_t wu = wb.column(gu), lu = wb.level(gu);
    const std::uint32_t wv = wb.column(gv), lv = wb.level(gv);
    std::vector<NodeId> path;
    path.push_back(wb.node(wu, lu));
    // Segment 1: up column wu to level 0.
    walk_column(wb, wu, lu, 0, path);
    // Segment 2: monotonic length-d walk correcting bits toward wv, in
    // increasing level order, ending back on level 0 (== level d).
    for (std::uint32_t step = 1; step <= d; ++step) {
      const std::uint32_t high_mask =
          step == d ? n - 1 : (~((1u << (d - step)) - 1)) & (n - 1);
      const std::uint32_t col = (wv & high_mask) | (wu & ~high_mask & (n - 1));
      path.push_back(wb.node(col, step % d));
    }
    // Segment 3: down column wv in decreasing level order to lv.
    if (lv != 0) {
      for (std::uint32_t lvl = d - 1; lvl >= lv; --lvl) {
        path.push_back(wb.node(wv, lvl));
        if (lvl == lv) break;
      }
    }
    out.emb.paths.push_back(std::move(path));
  }
  return out;
}

EmbeddingCase kn_into_bn(const topo::Butterfly& bf) {
  const std::uint32_t d = bf.dims();
  EmbeddingCase out;
  out.name = "K_N->Bn (Section 4.2)";
  out.guest = topo::complete_graph(bf.num_nodes());
  out.host = bf.graph();
  out.emb.node_map.resize(out.guest.num_nodes());
  for (NodeId v = 0; v < out.guest.num_nodes(); ++v) {
    out.emb.node_map[v] = v;
  }
  out.emb.paths.reserve(out.guest.num_edges());
  for (EdgeId e = 0; e < out.guest.num_edges(); ++e) {
    const auto [gu, gv] = out.guest.edge(e);
    const std::uint32_t wu = bf.column(gu), lu = bf.level(gu);
    const std::uint32_t wv = bf.column(gv), lv = bf.level(gv);
    std::vector<NodeId> path;
    path.push_back(bf.node(wu, lu));
    walk_column(bf, wu, lu, 0, path);  // up to level 0
    const auto mono = bf.monotonic_path(wu, wv);
    path.insert(path.end(), mono.begin() + 1, mono.end());  // to <wv, d>
    walk_column(bf, wv, d, lv, path);  // back up to lv
    out.emb.paths.push_back(std::move(path));
  }
  return out;
}

EmbeddingCase k2n_into_bn(const topo::Butterfly& bf) {
  const std::uint32_t d = bf.dims();
  EmbeddingCase out;
  out.name = "2K_N->Bn (Section 1.4)";
  out.guest = topo::complete_graph(bf.num_nodes(), 2);
  out.host = bf.graph();
  out.emb.node_map.resize(out.guest.num_nodes());
  for (NodeId v = 0; v < out.guest.num_nodes(); ++v) {
    out.emb.node_map[v] = v;
  }
  // complete_graph(N, 2) lays the two copies of each pair out
  // consecutively, so even guest-edge ids take the level-0 route and odd
  // ids the mirrored level-log n route.
  out.emb.paths.reserve(out.guest.num_edges());
  for (EdgeId e = 0; e < out.guest.num_edges(); ++e) {
    const auto [gu, gv] = out.guest.edge(e);
    const std::uint32_t wu = bf.column(gu), lu = bf.level(gu);
    const std::uint32_t wv = bf.column(gv), lv = bf.level(gv);
    std::vector<NodeId> path;
    path.push_back(bf.node(wu, lu));
    if (e % 2 == 0) {
      // Copy 1: up to level 0, monotone descent, up to lv.
      walk_column(bf, wu, lu, 0, path);
      const auto mono = bf.monotonic_path(wu, wv);
      path.insert(path.end(), mono.begin() + 1, mono.end());
      walk_column(bf, wv, d, lv, path);
    } else {
      // Copy 2: down to level log n, monotone ascent, down to lv.
      walk_column(bf, wu, lu, d, path);
      auto mono = bf.monotonic_path(wv, wu);  // <wv,0> .. <wu,d>
      std::reverse(mono.begin(), mono.end());
      path.insert(path.end(), mono.begin() + 1, mono.end());
      walk_column(bf, wv, 0, lv, path);
    }
    out.emb.paths.push_back(std::move(path));
  }
  return out;
}

EmbeddingCase benes_into_bn(const topo::Butterfly& bf) {
  const std::uint32_t d = bf.dims();
  BFLY_CHECK(d >= 2, "need log n >= 2 to fold a Benes into Bn");
  const std::uint32_t D = d - 1;
  const topo::Benes benes(bf.n() / 2);

  EmbeddingCase out;
  out.name = "Benes_{d-1}->Bn (Lemma 2.5)";
  out.guest = benes.graph();
  out.host = bf.graph();

  // Node map: first half <x, l> -> <x0, l>; second half -> <x1, 2D-l>.
  const auto image = [&](NodeId g) {
    const std::uint32_t x = benes.column(g);
    const std::uint32_t l = benes.level(g);
    if (l <= D) return bf.node(x << 1, l);
    return bf.node((x << 1) | 1u, 2 * D - l);
  };
  out.emb.node_map.resize(out.guest.num_nodes());
  for (NodeId g = 0; g < out.guest.num_nodes(); ++g) {
    out.emb.node_map[g] = image(g);
  }

  out.emb.paths.reserve(out.guest.num_edges());
  for (EdgeId e = 0; e < out.guest.num_edges(); ++e) {
    auto [ga, gb] = out.guest.edge(e);
    if (benes.level(ga) > benes.level(gb)) std::swap(ga, gb);
    const std::uint32_t b = benes.level(ga);  // guest boundary index
    std::vector<NodeId> path;
    if (b != D) {
      // Dilation-1 edges: both halves map boundary-aligned.
      path = {image(ga), image(gb)};
    } else {
      // Middle boundary: three-hop fold through level d (dilation 3).
      const std::uint32_t x0 = benes.column(ga) << 1;
      const std::uint32_t x1 = x0 | 1u;
      const bool straight = benes.column(ga) == benes.column(gb);
      if (straight) {
        // <x0,d-1> -s-> <x0,d> -c-> <x1,d-1> -s-> <x1,d-2>
        path = {bf.node(x0, d - 1), bf.node(x0, d), bf.node(x1, d - 1),
                bf.node(x1, d - 2)};
      } else {
        // <x0,d-1> -c-> <x1,d> -s-> <x1,d-1> -c-> <x'1,d-2>
        const std::uint32_t xp1 = (benes.column(gb) << 1) | 1u;
        path = {bf.node(x0, d - 1), bf.node(x1, d), bf.node(x1, d - 1),
                bf.node(xp1, d - 2)};
      }
    }
    out.emb.paths.push_back(std::move(path));
  }
  return out;
}

EmbeddingCase bk_into_bn(const topo::Butterfly& bf, std::uint32_t i,
                         std::uint32_t j) {
  const std::uint32_t d = bf.dims();
  BFLY_CHECK(i <= d, "collapse level out of range");
  BFLY_CHECK(d + j < 26, "guest butterfly too large");
  const topo::Butterfly guest_bf(bf.n() << j);
  const std::uint32_t D = d + j;

  EmbeddingCase out;
  out.name = "B_{n2^j}->Bn (Lemma 2.10)";
  out.guest = guest_bf.graph();
  out.host = bf.graph();

  const auto image = [&](NodeId g) {
    const std::uint32_t w = guest_bf.column(g);
    const std::uint32_t l = guest_bf.level(g);
    const std::uint32_t top = i == 0 ? 0u : w >> (D - i);
    const std::uint32_t bot =
        (d - i) == 0 ? 0u : w & ((1u << (d - i)) - 1);
    const std::uint32_t col = (top << (d - i)) | bot;
    std::uint32_t lvl;
    if (l < i) {
      lvl = l;
    } else if (l <= i + j) {
      lvl = i;
    } else {
      lvl = l - j;
    }
    return bf.node(col, lvl);
  };
  out.emb.node_map.resize(out.guest.num_nodes());
  for (NodeId g = 0; g < out.guest.num_nodes(); ++g) {
    out.emb.node_map[g] = image(g);
  }
  out.emb.paths.reserve(out.guest.num_edges());
  for (EdgeId e = 0; e < out.guest.num_edges(); ++e) {
    const auto [ga, gb] = out.guest.edge(e);
    const NodeId ha = image(ga), hb = image(gb);
    if (ha == hb) {
      out.emb.paths.push_back({ha});  // collapsed inside the band
    } else {
      out.emb.paths.push_back({ha, hb});  // dilation 1
    }
  }
  return out;
}

EmbeddingCase bn_into_mos(const topo::Butterfly& bf, std::uint32_t j,
                          std::uint32_t k) {
  const std::uint32_t d = bf.dims();
  BFLY_CHECK(is_pow2(j) && is_pow2(k), "j and k must be powers of two");
  const std::uint32_t tj = log2_exact(j);
  const std::uint32_t tk = log2_exact(k);
  BFLY_CHECK(tj + tk <= d, "jk must divide n");
  const topo::MeshOfStars mos(j, k);

  EmbeddingCase out;
  out.name = "Bn->MOS (Lemma 2.11)";
  out.guest = bf.graph();
  out.host = mos.graph();

  const auto image = [&](NodeId g) {
    const std::uint32_t col = bf.column(g);
    const std::uint32_t lvl = bf.level(g);
    const std::uint32_t p = col & (j - 1);   // M1 index (bottom log j bits)
    const std::uint32_t q = col >> (d - tk);  // M3 index (top log k bits)
    if (lvl < tk) return mos.m1_node(p);
    if (lvl > d - tj) return mos.m3_node(q);
    return mos.m2_node(p, q);
  };
  out.emb.node_map.resize(out.guest.num_nodes());
  for (NodeId g = 0; g < out.guest.num_nodes(); ++g) {
    out.emb.node_map[g] = image(g);
  }
  out.emb.paths.reserve(out.guest.num_edges());
  for (EdgeId e = 0; e < out.guest.num_edges(); ++e) {
    const auto [ga, gb] = out.guest.edge(e);
    const NodeId ha = image(ga), hb = image(gb);
    if (ha == hb) {
      out.emb.paths.push_back({ha});
    } else {
      out.emb.paths.push_back({ha, hb});  // dilation 1 (Lemma 2.11(1))
    }
  }
  return out;
}

EmbeddingCase wn_into_ccc(const topo::CubeConnectedCycles& cc) {
  const std::uint32_t n = cc.n();
  const std::uint32_t d = cc.dims();
  const topo::WrappedButterfly wb(n);

  EmbeddingCase out;
  out.name = "Wn->CCCn (Lemma 3.3)";
  out.guest = wb.graph();
  out.host = cc.graph();
  out.emb.node_map.resize(out.guest.num_nodes());
  for (NodeId g = 0; g < out.guest.num_nodes(); ++g) {
    out.emb.node_map[g] = cc.node(wb.column(g), wb.level(g));
  }
  out.emb.paths.reserve(out.guest.num_edges());
  // Orientation check: ga at level i, gb one level up, and (for cross
  // edges) the column difference matching boundary i's mask. With
  // log n = 2 both orientations are level-adjacent, so the mask test is
  // what disambiguates.
  const auto oriented = [&](NodeId x, NodeId y) {
    if ((wb.level(x) + 1) % d != wb.level(y)) return false;
    if (wb.column(x) == wb.column(y)) return true;
    return (wb.column(x) ^ wb.column(y)) == wb.cross_mask(wb.level(x));
  };
  for (EdgeId e = 0; e < out.guest.num_edges(); ++e) {
    auto [ga, gb] = out.guest.edge(e);
    if (!oriented(ga, gb)) std::swap(ga, gb);
    BFLY_ASSERT(oriented(ga, gb));
    const std::uint32_t i = wb.level(ga);
    const std::uint32_t wa = wb.column(ga), wc = wb.column(gb);
    if (wa == wc) {
      // Straight edge -> the corresponding cycle edge.
      out.emb.paths.push_back({cc.node(wa, i), cc.node(wa, (i + 1) % d)});
    } else {
      // Cross edge -> cube edge at position i, then a cycle edge.
      out.emb.paths.push_back({cc.node(wa, i), cc.node(wc, i),
                               cc.node(wc, (i + 1) % d)});
    }
  }
  return out;
}

EmbeddingCase bn_into_hypercube(const topo::Butterfly& bf) {
  const std::uint32_t d = bf.dims();
  std::uint32_t level_bits = 1;
  while ((1u << level_bits) < d + 1) ++level_bits;

  const topo::Hypercube q(d + level_bits);

  EmbeddingCase out;
  out.name = "Bn->hypercube (Section 1.5)";
  out.guest = bf.graph();
  out.host = q.graph();

  const auto gray = [](std::uint32_t i) { return i ^ (i >> 1); };
  const auto image = [&](NodeId g) {
    return static_cast<NodeId>((bf.column(g) << level_bits) |
                               gray(bf.level(g)));
  };
  out.emb.node_map.resize(out.guest.num_nodes());
  for (NodeId g = 0; g < out.guest.num_nodes(); ++g) {
    out.emb.node_map[g] = image(g);
  }
  out.emb.paths.reserve(out.guest.num_edges());
  for (EdgeId e = 0; e < out.guest.num_edges(); ++e) {
    auto [ga, gb] = out.guest.edge(e);
    if (bf.level(ga) > bf.level(gb)) std::swap(ga, gb);
    const NodeId ha = image(ga), hb = image(gb);
    if (bf.column(ga) == bf.column(gb)) {
      out.emb.paths.push_back({ha, hb});  // Gray codes differ in one bit
    } else {
      // Column and level both change: two hops via (column of gb, level
      // of ga).
      const NodeId mid = static_cast<NodeId>(
          (bf.column(gb) << level_bits) | gray(bf.level(ga)));
      out.emb.paths.push_back({ha, mid, hb});
    }
  }
  return out;
}

}  // namespace bfly::embed
