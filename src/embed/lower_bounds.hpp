// Section 1.4 lower-bound arithmetic: turning a measured embedding of a
// complete (or complete bipartite) graph into bounds on the host's
// bisection width and edge expansion.
#pragma once

#include <cstddef>

namespace bfly::embed {

/// BW(K_N) = floor(N/2) * ceil(N/2).
[[nodiscard]] std::size_t bw_complete(std::size_t n);

/// EE(K_N, k) = k (N - k).
[[nodiscard]] std::size_t ee_complete(std::size_t n, std::size_t k);

/// Host bisection-width lower bound from an embedding of m*K_N with
/// load 1 and measured congestion c: BW(host) >= m * BW(K_N) / c
/// (Section 1.4). Returns the (real-valued) bound.
[[nodiscard]] double bw_lower_bound_from_kn(std::size_t n,
                                            std::size_t congestion,
                                            std::size_t multiplicity = 1);

/// Host edge-expansion lower bound EE(host, k) >= k (N - k) / c.
[[nodiscard]] double ee_lower_bound_from_kn(std::size_t n, std::size_t k,
                                            std::size_t congestion);

/// Lemma 3.1 bound: a cut of Bn bisecting inputs (or outputs, or both
/// pooled) has capacity >= BW-of-K_{n,n}-bisection / congestion, i.e.
/// (n^2/2) / (n/2) = n when the measured congestion is n/2.
[[nodiscard]] double input_bisection_lower_bound_from_knn(
    std::size_t n, std::size_t congestion);

}  // namespace bfly::embed
