#include "embed/lower_bounds.hpp"

namespace bfly::embed {

std::size_t bw_complete(std::size_t n) { return (n / 2) * ((n + 1) / 2); }

std::size_t ee_complete(std::size_t n, std::size_t k) {
  return k * (n - k);
}

double bw_lower_bound_from_kn(std::size_t n, std::size_t congestion,
                              std::size_t multiplicity) {
  return static_cast<double>(multiplicity) *
         static_cast<double>(bw_complete(n)) /
         static_cast<double>(congestion);
}

double ee_lower_bound_from_kn(std::size_t n, std::size_t k,
                              std::size_t congestion) {
  return static_cast<double>(ee_complete(n, k)) /
         static_cast<double>(congestion);
}

double input_bisection_lower_bound_from_knn(std::size_t n,
                                            std::size_t congestion) {
  // A cut bisecting the left side of K_{n,n} has capacity >= n^2/2
  // (Lemma 3.1's counting argument), so the host cut has capacity at
  // least that divided by the embedding's congestion.
  const double min_knn_cut = static_cast<double>(n) * n / 2.0;
  return min_knn_cut / static_cast<double>(congestion);
}

}  // namespace bfly::embed
