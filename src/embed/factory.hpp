// The paper's embeddings, constructed explicitly so their load,
// congestion, and dilation can be measured and every structural property
// the proofs rely on can be machine-checked.
//
//   knn_into_bn      Lemma 3.1    K_{n,n} -> Bn   (load 1, congestion n/2,
//                                                  dilation log n)
//   kn_into_wn       Theorem 4.3  K_N -> Wn       (3-segment routes,
//                                                  congestion O(N log n))
//   kn_into_bn       Section 4.2  K_N -> Bn       (adapted 3-segment)
//   benes_into_bn    Lemma 2.5    Beneš_{d-1} -> Bn (load 1, congestion 1,
//                                                  dilation 3)
//   bk_into_bn       Lemma 2.10   B_{n 2^j} -> Bn (dilation <= 1 per edge,
//                                                  congestion 2^j)
//   bn_into_mos      Lemma 2.11   Bn -> MOS_{j,k} (dilation 1, congestion
//                                                  2n/jk)
//   wn_into_ccc      Lemma 3.3    Wn -> CCCn      (congestion 2)
//   bn_into_hypercube  §1.5       Bn -> Q_{log n + ceil(log(log n + 1))}
#pragma once

#include <cstdint>
#include <string>

#include "embed/embedding.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::embed {

/// A self-contained embedding instance: guest and host graphs plus the
/// mapping, ready for measure_embedding.
struct EmbeddingCase {
  std::string name;
  Graph guest;
  Graph host;
  Embedding emb;
};

[[nodiscard]] EmbeddingCase knn_into_bn(const topo::Butterfly& bf);
[[nodiscard]] EmbeddingCase kn_into_wn(const topo::WrappedButterfly& wb);
[[nodiscard]] EmbeddingCase kn_into_bn(const topo::Butterfly& bf);

/// The doubled complete graph 2K_N into Bn (Section 1.4): the first copy
/// of each edge routes through level 0, the second through level log n,
/// so the two copies of an edge are (mostly) edge-disjoint. This is the
/// embedding behind the pre-paper bound BW(Bn) >= n/2.
[[nodiscard]] EmbeddingCase k2n_into_bn(const topo::Butterfly& bf);
[[nodiscard]] EmbeddingCase benes_into_bn(const topo::Butterfly& bf);
[[nodiscard]] EmbeddingCase bk_into_bn(const topo::Butterfly& bf,
                                       std::uint32_t i, std::uint32_t j);
[[nodiscard]] EmbeddingCase bn_into_mos(const topo::Butterfly& bf,
                                        std::uint32_t j, std::uint32_t k);
[[nodiscard]] EmbeddingCase wn_into_ccc(const topo::CubeConnectedCycles& cc);
[[nodiscard]] EmbeddingCase bn_into_hypercube(const topo::Butterfly& bf);

}  // namespace bfly::embed
