#include "embed/embedding.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/error.hpp"

namespace bfly::embed {

EmbeddingMetrics measure_embedding(const Graph& guest, const Graph& host,
                                   const Embedding& e) {
  BFLY_CHECK(e.node_map.size() == guest.num_nodes(),
             "node map must cover every guest node");
  BFLY_CHECK(e.paths.size() == guest.num_edges(),
             "paths must cover every guest edge");

  EmbeddingMetrics m;

  // Load.
  std::vector<std::size_t> load(host.num_nodes(), 0);
  for (const NodeId h : e.node_map) {
    BFLY_CHECK(h < host.num_nodes(), "node map target out of range");
    ++load[h];
  }
  m.load = *std::max_element(load.begin(), load.end());

  // Path validity, dilation, and per-connection use counts.
  std::unordered_map<std::uint64_t, std::size_t> use;
  const auto key = [](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  for (EdgeId ge = 0; ge < guest.num_edges(); ++ge) {
    const auto& path = e.paths[ge];
    BFLY_CHECK(!path.empty(), "empty path");
    const auto [gu, gv] = guest.edge(ge);
    const NodeId a = e.node_map[gu];
    const NodeId b = e.node_map[gv];
    const bool forward = path.front() == a && path.back() == b;
    const bool backward = path.front() == b && path.back() == a;
    BFLY_CHECK(forward || backward,
               "path endpoints do not match the guest edge");
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      BFLY_CHECK(host.has_edge(path[i], path[i + 1]),
                 "path step is not a host edge");
      ++use[key(path[i], path[i + 1])];
    }
    m.dilation = std::max(m.dilation, path.size() - 1);
  }

  // Congestion, pooling parallel host edges.
  m.edge_use.assign(host.num_edges(), 0);
  for (const auto& [k, cnt] : use) {
    const auto u = static_cast<NodeId>(k >> 32);
    const auto v = static_cast<NodeId>(k & 0xffffffffu);
    const std::size_t mult = host.edge_multiplicity(u, v);
    const std::size_t per_edge = (cnt + mult - 1) / mult;
    m.congestion = std::max(m.congestion, per_edge);
    // Record on the first matching edge id for reporting.
    for (const EdgeId he : host.incident_edges(u)) {
      const auto [x, y] = host.edge(he);
      if ((x == u && y == v) || (x == v && y == u)) {
        m.edge_use[he] = cnt;
        break;
      }
    }
  }
  return m;
}

void validate_embedding(const Graph& guest, const Graph& host,
                        const Embedding& e, const EmbeddingMetrics& m) {
  const EmbeddingMetrics fresh = measure_embedding(guest, host, e);
  BFLY_CHECK(fresh.load == m.load,
             "recounted embedding load does not match");
  BFLY_CHECK(fresh.congestion == m.congestion,
             "recounted embedding congestion does not match");
  BFLY_CHECK(fresh.dilation == m.dilation,
             "recounted embedding dilation does not match");
  BFLY_CHECK(fresh.edge_use == m.edge_use,
             "recounted per-edge use does not match");
}

}  // namespace bfly::embed
