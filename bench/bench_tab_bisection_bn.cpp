// E3 — Theorem 2.20 headline table: BW(Bn)/n across n.
//
// exact       branch-and-bound / exhaustive optimum (materializable n)
// heuristic   best of FM/KL (upper bound witness)
// folklore    the column-split cut (capacity n) the paper debunks
// MOS LB      the Lemma 2.13 analytic chain 2 BW(MOS_{n,n}, M2)/n^2
// asymptote   2(sqrt2 - 1) = 0.8284..., the true limit of BW(Bn)/n
#include <algorithm>
#include <cmath>
#include <iostream>

#include "cut/branch_bound.hpp"
#include "cut/brute_force.hpp"
#include "cut/constructive.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "cut/kernighan_lin.hpp"
#include "cut/lemma213.hpp"
#include "cut/mos_theory.hpp"
#include "cut/multilevel.hpp"
#include "io/table.hpp"
#include "topology/butterfly.hpp"

int main() {
  using namespace bfly;
  std::cout << "E3 / Theorem 2.20 — bisection width of Bn\n"
            << "paper: 2(sqrt2-1) n < BW(Bn) <= 2(sqrt2-1) n + o(n);\n"
            << "folklore (refuted asymptotically): BW(Bn) = n\n\n";

  io::Table t({"n", "N", "BW(Bn)", "tag", "BW/n", "folklore/n",
               "MOS chain LB /n", "asymptote"});

  const double asym = 2.0 * (std::sqrt(2.0) - 1.0);
  for (const std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const topo::Butterfly bf(n);
    std::size_t bw = 0;
    const char* tag = "exact";
    if (n <= 8) {
      cut::BranchBoundOptions opts;
      opts.initial_bound = cut::column_split_bisection(bf).capacity;
      const auto r = cut::min_bisection_branch_bound(bf.graph(), opts);
      bw = std::min<std::size_t>(r.capacity, n);
    } else {
      const auto fm = cut::min_bisection_fiduccia_mattheyses(bf.graph());
      const auto kl = cut::min_bisection_kernighan_lin(bf.graph());
      const auto ml = cut::min_bisection_multilevel(bf.graph());
      bw = std::min({fm.capacity, kl.capacity, ml.capacity,
                     static_cast<std::size_t>(n)});
      tag = "heuristic UB";
    }
    const double moslb =
        2.0 *
        static_cast<double>(cut::mos_m2_bisection_value(n).capacity) /
        (static_cast<double>(n) * n);
    t.add(std::to_string(n), std::to_string(bf.num_nodes()),
          std::to_string(bw), tag,
          io::fmt(static_cast<double>(bw) / n, 4), "1.0000",
          io::fmt(moslb, 4), io::fmt(asym, 4));
  }
  t.print(std::cout);

  std::cout
      << "\nReading: at materializable sizes the exact optimum equals the\n"
         "folklore n (the o(n) term dominates); the sub-n bisection is an\n"
         "asymptotic phenomenon — see E12 for the analytic crossover and\n"
         "E4 for the exactly-computed constant sqrt2-1 = 0.4142.\n\n";

  // The Lemma 2.13 lower-bound chain, executed step by step from the
  // folklore bisection (every equality below is asserted inside
  // lemma213_chain; a violation would throw).
  io::Table chain({"n", "C(input)", "level cut (L2.12)",
                   "lifted = n*level (L2.10)", "compacted (L2.9)",
                   "MOS = compacted/2 (L2.11)", "analytic BW(MOS)",
                   "2BW(MOS) <= n*C"});
  for (const std::uint32_t n : {2u, 4u, 8u}) {
    const topo::Butterfly bf(n);
    const auto cs = cut::column_split_bisection(bf);
    const auto tr = cut::lemma213_chain(bf, cs.sides);
    chain.add(std::to_string(n), std::to_string(tr.input_capacity),
              std::to_string(tr.level_cut_capacity),
              std::to_string(tr.lifted_capacity),
              std::to_string(tr.compacted_capacity),
              std::to_string(tr.mos_capacity),
              std::to_string(tr.mos_optimum),
              tr.chain_holds ? "holds" : "VIOLATED");
  }
  std::cout << "Lemma 2.13 chain trace (machine-checked):\n";
  chain.print(std::cout);
  return 0;
}
