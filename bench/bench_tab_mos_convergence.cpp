// E4 — Lemma 2.19: BW(MOS_{j,j}, M2)/j^2 converges to sqrt(2)-1 from
// above. The values are EXACT for every j (Lemma 2.17 is an equality,
// minimized over the integer grid in O(j)); for j <= 4 a structure-free
// brute force over all cuts cross-checks the closed form.
#include <cmath>
#include <iostream>

#include "cut/brute_force.hpp"
#include "cut/mos_theory.hpp"
#include "io/table.hpp"
#include "topology/mesh_of_stars.hpp"

int main() {
  using namespace bfly;
  const double limit = std::sqrt(2.0) - 1.0;
  std::cout << "E4 / Lemma 2.19 — BW(MOS_{j,j}, M2)/j^2 -> sqrt2-1 = "
            << io::fmt(limit, 10) << "\n\n";

  io::Table t({"j", "BW(MOS_{j,j},M2)", "opt (a,b)", "normalized",
               "gap to sqrt2-1", "brute force"});
  for (std::uint32_t j = 2; j <= (1u << 16); j *= 2) {
    const auto v = cut::mos_m2_bisection_value(j);
    std::string brute = "-";
    if (j <= 4) {
      const topo::MeshOfStars mos(j, j);
      const auto b =
          cut::min_cut_bisecting_exhaustive(mos.graph(), mos.m2_nodes());
      brute = std::to_string(b.capacity) +
              (b.capacity == v.capacity ? " (match)" : " (MISMATCH)");
    }
    t.add(std::to_string(j), std::to_string(v.capacity),
          "(" + std::to_string(v.a) + "," + std::to_string(v.b) + ")",
          io::fmt(v.normalized, 8), io::fmt(v.normalized - limit, 8),
          brute);
  }
  t.print(std::cout);

  std::cout << "\nEvery row is strictly above sqrt2-1 (the paper proves the\n"
               "normalized value is never rational-equal to the limit) and\n"
               "the optimal split (a/j, b/j) approaches (1/sqrt2, 1/sqrt2)\n"
               "or its complement.\n";
  return 0;
}
