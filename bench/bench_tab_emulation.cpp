// E17 — Section 1.5 emulations: one full-exchange guest step routed
// through each embedding; the measured host makespan (the emulation
// slowdown) sits within a small factor of load+congestion+dilation.
#include <iostream>

#include "io/table.hpp"
#include "routing/emulation.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/wrapped_butterfly.hpp"

int main() {
  using namespace bfly;
  std::cout << "E17 / Section 1.5 — emulation slowdowns through the "
               "paper's embeddings\n\n";

  io::Table t({"guest -> host", "messages/step", "host makespan",
               "l+c+d reference"});
  const topo::Butterfly b16(16);
  const topo::WrappedButterfly w16(16);
  const topo::CubeConnectedCycles c16(16);

  const auto row = [&](const embed::EmbeddingCase& c) {
    const auto rep = routing::emulate_full_exchange(c);
    t.add(c.name, std::to_string(rep.messages_per_step),
          std::to_string(rep.step_makespan),
          std::to_string(rep.lcd_reference));
  };
  row(embed::wn_into_ccc(c16));       // CCC emulates Wn (Lemma 3.3 fold)
  row(embed::benes_into_bn(b16));     // Bn emulates the Benes (Lemma 2.5)
  row(embed::bn_into_hypercube(b16)); // hypercube emulates Bn (§1.5)
  row(embed::bk_into_bn(b16, 2, 1));  // Bn emulates B_{2n} (Lemma 2.10)
  row(embed::bn_into_mos(b16, 4, 4)); // MOS "emulates" Bn (Lemma 2.11)
  t.print(std::cout);

  std::cout << "\nConstant-factor slowdowns for the constant-l/c/d\n"
               "embeddings — the computational-equivalence claims the\n"
               "paper cites (Schwabe; Koch et al.), realized in the\n"
               "store-and-forward model.\n";
  return 0;
}
