// E11b — solver QUALITY comparison: capacity found by each bisection
// method across the paper's network families (perf is E11's
// google-benchmark binary), now driven through the parallel portfolio.
// For every instance the serial solver sweep and the 4-thread portfolio
// run on identical derived seeds, so the table shows both the quality
// invariant (portfolio <= best individual solver, by construction: it
// races exactly those solvers and keeps the minimum) and the wall-time
// win from racing them concurrently with a shared incumbent. The
// portfolio reaches one size further per family than the old serial
// sweep did (B128 / W128 / CCC128).
#include <chrono>
#include <iostream>

#include "core/error.hpp"
#include "cut/branch_bound.hpp"
#include "cut/constructive.hpp"
#include "cut/portfolio.hpp"
#include "io/table.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/hypercube.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace {

using namespace bfly;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

constexpr std::uint64_t kMaster = 0xe11bull;

void solve_row(const Graph& g, io::Table& t, const std::string& name,
               const std::string& exact_or_paper, bool exact_in_reach,
               cut::PortfolioResult* showcase = nullptr) {
  // Serial sweep: each solver standalone, with the same seeds the
  // portfolio derives, summed wall time.
  cut::PortfolioOptions opts;
  opts.master_seed = kMaster;
  const auto seeds = cut::derive_portfolio_seeds(kMaster);
  opts.kl.seed = seeds.kl;
  opts.fm.seed = seeds.fm;
  opts.sa.seed = seeds.sa;
  opts.multilevel.seed = seeds.multilevel;
  opts.spectral.seed = seeds.spectral;

  const auto t_serial = std::chrono::steady_clock::now();
  const auto kl = cut::min_bisection_kernighan_lin(g, opts.kl);
  const auto fm = cut::min_bisection_fiduccia_mattheyses(g, opts.fm);
  const auto sa = cut::min_bisection_simulated_annealing(g, opts.sa);
  const auto sp = cut::min_bisection_spectral(g, opts.spectral);
  const auto ml = cut::min_bisection_multilevel(g, opts.multilevel);
  double serial_s = seconds_since(t_serial);
  std::size_t best_serial = kl.capacity;
  for (const auto* r : {&fm, &sa, &sp, &ml}) {
    best_serial = std::min(best_serial, r->capacity);
  }
  if (exact_in_reach) {
    // The serial baseline's exact pass starts cold (its only bound is
    // the constructive cut a caller would supply by hand).
    const auto t_bb = std::chrono::steady_clock::now();
    cut::BranchBoundOptions bb;
    bb.initial_bound = best_serial;
    (void)cut::min_bisection_branch_bound(g, bb);
    serial_s += seconds_since(t_bb);
  }

  // Portfolio: same solvers, same seeds, raced at 4 threads with the
  // shared incumbent feeding branch-and-bound.
  opts.num_threads = 4;
  opts.run_branch_bound = exact_in_reach;
  const auto pf = cut::min_bisection_portfolio(g, opts);

  t.add(name, std::to_string(g.num_nodes()), exact_or_paper,
        std::to_string(kl.capacity), std::to_string(fm.capacity),
        std::to_string(sa.capacity), std::to_string(sp.capacity),
        std::to_string(ml.capacity),
        std::to_string(pf.best.capacity) + (pf.proved_optimal ? "*" : ""),
        io::fmt(serial_s * 1e3, 1), io::fmt(pf.wall_seconds * 1e3, 1));

  if (pf.best.capacity > best_serial) {
    std::cout << "INVARIANT VIOLATION on " << name
              << ": portfolio worse than best serial solver\n";
  }
  if (showcase != nullptr) *showcase = pf;
}

}  // namespace

int main() {
  std::cout << "E11b — bisection capacity by solver (lower is better);\n"
               "portfolio column races all of them at 4 threads on the\n"
               "same seeds (* = optimality proved by branch-and-bound)\n\n";
  io::Table t({"network", "N", "exact/paper", "KL", "FM", "SA", "spectral",
               "multilevel", "portfolio", "serial_ms", "portfolio_ms"});

  // Checked builds run every solver with deep validation at exit and no
  // optimizer; sanitized builds pay ~10x instrumentation overhead. In
  // either case the 128-input rows would dominate a smoke run by
  // minutes without exercising new code paths, so they are reserved for
  // plain release builds. The numbers in DESIGN.md/README come from
  // release runs.
  const bool full_sweep = !checked_build() && !sanitized_build();
  if (!full_sweep) {
    std::cout << "(checked/sanitized build: 128-input rows skipped; run "
                 "a release build for the full table)\n\n";
  }

  cut::PortfolioResult showcase;
  {
    const topo::Butterfly bf(8);
    solve_row(bf.graph(), t, "B8", "8 (exact)", true, &showcase);
  }
  {
    const topo::Butterfly bf(64);
    solve_row(bf.graph(), t, "B64", "<= 64 (folklore)", false);
  }
  if (full_sweep) {
    const topo::Butterfly bf(128);
    solve_row(bf.graph(), t, "B128", "<= 128 (folklore)", false);
  }
  {
    const topo::WrappedButterfly wb(8);
    solve_row(wb.graph(), t, "W8", "8 (exact)", true);
  }
  {
    const topo::WrappedButterfly wb(64);
    solve_row(wb.graph(), t, "W64", "64 (paper)", false);
  }
  if (full_sweep) {
    const topo::WrappedButterfly wb(128);
    solve_row(wb.graph(), t, "W128", "128 (paper)", false);
  }
  {
    const topo::CubeConnectedCycles cc(64);
    solve_row(cc.graph(), t, "CCC64", "32 (paper)", false);
  }
  if (full_sweep) {
    const topo::CubeConnectedCycles cc(128);
    solve_row(cc.graph(), t, "CCC128", "64 (paper)", false);
  }
  {
    const topo::Hypercube q6(6);
    solve_row(q6.graph(), t, "Q6", "32 (known)", false);
  }
  t.print(std::cout);

  std::cout << "\nPortfolio telemetry for the B8 row (incumbent sharing:\n"
               "heuristics publish, branch-and-bound prunes against the\n"
               "shared bound and cancels them once optimality is proved):\n\n";
  cut::print_portfolio_telemetry(showcase, std::cout);

  std::cout << "\nAll heuristic capacities are upper-bound witnesses. The\n"
               "portfolio is never worse than the best individual solver\n"
               "on the same seeds (it races exactly those solvers), and\n"
               "rows marked * carry a branch-and-bound optimality proof\n"
               "obtained while the heuristics were still running.\n";
  return 0;
}
