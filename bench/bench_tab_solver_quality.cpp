// E11b — solver QUALITY comparison: capacity found by each bisection
// method across the paper's network families (perf is E11's
// google-benchmark binary). Exact optima appear where materializable,
// so heuristic gaps are visible at a glance.
#include <iostream>

#include "cut/branch_bound.hpp"
#include "cut/constructive.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "cut/kernighan_lin.hpp"
#include "cut/multilevel.hpp"
#include "cut/simulated_annealing.hpp"
#include "cut/spectral_bisection.hpp"
#include "io/table.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/hypercube.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace {

using namespace bfly;

std::string solve_all_row(const Graph& g, io::Table& t,
                          const std::string& name,
                          const std::string& exact_or_paper) {
  const auto kl = cut::min_bisection_kernighan_lin(g);
  const auto fm = cut::min_bisection_fiduccia_mattheyses(g);
  const auto sa = cut::min_bisection_simulated_annealing(g);
  const auto sp = cut::min_bisection_spectral(g);
  const auto ml = cut::min_bisection_multilevel(g);
  t.add(name, std::to_string(g.num_nodes()), exact_or_paper,
        std::to_string(kl.capacity), std::to_string(fm.capacity),
        std::to_string(sa.capacity), std::to_string(sp.capacity),
        std::to_string(ml.capacity));
  return {};
}

}  // namespace

int main() {
  std::cout << "E11b — bisection capacity by solver (lower is better)\n\n";
  io::Table t({"network", "N", "exact/paper", "KL", "FM", "SA",
               "spectral", "multilevel"});

  {
    const topo::Butterfly bf(8);
    cut::BranchBoundOptions opts;
    opts.initial_bound = 8;
    const auto ex = cut::min_bisection_branch_bound(bf.graph(), opts);
    solve_all_row(bf.graph(), t, "B8",
                  std::to_string(ex.capacity) + " (exact)");
  }
  {
    const topo::Butterfly bf(64);
    solve_all_row(bf.graph(), t, "B64", "<= 64 (folklore)");
  }
  {
    const topo::WrappedButterfly wb(8);
    solve_all_row(wb.graph(), t, "W8", "8 (exact)");
  }
  {
    const topo::WrappedButterfly wb(64);
    solve_all_row(wb.graph(), t, "W64", "64 (paper)");
  }
  {
    const topo::CubeConnectedCycles cc(64);
    solve_all_row(cc.graph(), t, "CCC64", "32 (paper)");
  }
  {
    const topo::Hypercube q6(6);
    solve_all_row(q6.graph(), t, "Q6", "32 (known)");
  }
  t.print(std::cout);
  std::cout << "\nAll five are upper-bound witnesses. Multilevel and SA\n"
               "recover the optimum everywhere here; flat KL/FM and the\n"
               "spectral split can lodge in local optima on CCC (its\n"
               "long cycles defeat single-move refinement), which is\n"
               "exactly why the multilevel pipeline exists.\n";
  return 0;
}
