// E10 — Section 1.4 embeddings: measured load/congestion/dilation of
// every embedding the paper uses, against the claimed values, plus the
// lower bounds they imply.
#include <iostream>

#include "embed/embedding.hpp"
#include "embed/factory.hpp"
#include "embed/lower_bounds.hpp"
#include "io/table.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/wrapped_butterfly.hpp"

int main() {
  using namespace bfly;
  std::cout << "E10 / Section 1.4 — the paper's embeddings, measured\n\n";

  io::Table t({"embedding", "load", "congestion", "dilation",
               "paper (l, c, d)"});
  const topo::Butterfly b16(16);
  const topo::WrappedButterfly w16(16);
  const topo::CubeConnectedCycles c16(16);

  const auto row = [&](const embed::EmbeddingCase& c,
                       const std::string& paper) {
    const auto m = embed::measure_embedding(c.guest, c.host, c.emb);
    t.add(c.name, std::to_string(m.load), std::to_string(m.congestion),
          std::to_string(m.dilation), paper);
    return m;
  };

  const auto knn = row(embed::knn_into_bn(b16), "1, n/2 = 8, log n = 4");
  row(embed::kn_into_wn(w16), "1, O(N log n), <= 3logn-2");
  row(embed::kn_into_bn(b16), "1, O(N log n), <= 3logn");
  row(embed::benes_into_bn(b16), "1, 1, 3");
  row(embed::bk_into_bn(b16, 2, 1), "(j+1)2^j on L_i, 2^j = 2, 1");
  row(embed::bn_into_mos(b16, 4, 4), "uniform, 2n/jk = 2, 1");
  row(embed::wn_into_ccc(c16), "1, 2, 2");
  row(embed::bn_into_hypercube(b16), "1, O(1), O(1)");
  t.print(std::cout);

  std::cout << "\nDerived lower bounds (Section 1.4 arithmetic):\n";
  io::Table lb({"bound", "value"});
  lb.add("Lemma 3.1: input-bisecting cuts of B16 >= n",
         io::fmt(embed::input_bisection_lower_bound_from_knn(
                     16, knn.congestion),
                 1));
  {
    const auto c = embed::kn_into_wn(w16);
    const auto m = embed::measure_embedding(c.guest, c.host, c.emb);
    lb.add("K_N->W16: BW(W16) >= BW(K_N)/c",
           io::fmt(embed::bw_lower_bound_from_kn(w16.num_nodes(),
                                                 m.congestion),
                   3));
    lb.add("K_N->W16: EE(W16, 8) >= k(N-k)/c",
           io::fmt(embed::ee_lower_bound_from_kn(w16.num_nodes(), 8,
                                                 m.congestion),
                   3));
  }
  lb.print(std::cout);
  std::cout << "\n(The K_N-based bounds lose their leading constants to the\n"
               "generic congestion estimate, exactly as the paper notes —\n"
               "they give Omega(n) / Omega(k/log n), not tight constants.)\n";
  return 0;
}
