// E8 — Section 1.1 diameters: diameter(Bn) = 2 log n and
// diameter(Wn) = floor(3 log n / 2), verified exactly by parallel
// all-pairs BFS; CCC and hypercube included for context.
#include <iostream>

#include "algo/diameter.hpp"
#include "io/table.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/hypercube.hpp"
#include "topology/wrapped_butterfly.hpp"

int main() {
  using namespace bfly;
  std::cout << "E8 / Section 1.1 — exact diameters (all-pairs BFS)\n\n";
  io::Table t({"n", "diam Bn", "paper 2logn", "diam Wn",
               "paper floor(3logn/2)", "diam CCCn", "diam Q_logn"});
  for (const std::uint32_t n : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const topo::Butterfly bf(n);
    const topo::WrappedButterfly wb(n);
    const topo::CubeConnectedCycles cc(n);
    const topo::Hypercube q(bf.dims());
    t.add(std::to_string(n), std::to_string(algo::diameter(bf.graph())),
          std::to_string(2 * bf.dims()),
          std::to_string(algo::diameter(wb.graph())),
          std::to_string(3 * wb.dims() / 2),
          std::to_string(algo::diameter(cc.graph())),
          std::to_string(algo::diameter(q.graph())));
  }
  t.print(std::cout);
  return 0;
}
