// E19 — exact-kernel performance: the scalar reference kernels vs the
// word-level bitset branch-and-bound and the sharded exhaustive
// expansion sweep, old-vs-new on the same instances.
//
// Emits one machine-readable JSON file (BENCH_exact_kernels.json in the
// working directory, overridable with --out=<path>) with rows
//   {instance, kernel, threads, seconds, visited_nodes, capacity,
//    nodes_per_sec, ws_spawned, ws_steals, ws_idle_seconds}
// where `capacity` is the proved bisection width for bisection rows and
// EE(G, floor(N/2)) for expansion rows (the full tables are compared
// internally). The binary exits nonzero if any new kernel disagrees
// with its scalar reference — CI runs `bench_exact_kernels --smoke`
// (small instance set, < 60 s even in Debug) as a correctness gate and
// uploads the JSON as an artifact. Without --smoke the full instance
// set runs, sized for Release timing (W16/CCC16 bisection, exact B16
// closure, a 26-node exhaustive expansion).
//
// E23 — SIMD dispatch trajectory: node-budgeted bitset B&B rows named
// `bb-bitset@<level>` run the identical search at each pinned dispatch
// level (scalar, avx2; avx512 in full mode when detected). The node
// budget makes visited counts level-invariant — any divergence is a
// kernel bug and fails the run — so the wall-clock ratio IS the
// nodes/s ratio. The W32 rows define `bb_simd_speedup` in the JSON
// (avx2 over scalar), which compare_bench.py gates. `--dispatch=<level>`
// pins the whole run (clamped to what the CPU supports, loudly).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/simd.hpp"
#include "core/thread_pool.hpp"
#include "cut/branch_bound.hpp"
#include "cut/constructive.hpp"
#include "expansion/expansion.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace {

using namespace bfly;

struct Row {
  std::string instance;
  std::string kernel;
  unsigned threads = 1;
  double seconds = 0.0;
  std::uint64_t visited_nodes = 0;
  std::size_t capacity = 0;
  double nodes_per_sec = 0.0;
  std::uint64_t ws_spawned = 0;
  std::uint64_t ws_steals = 0;
  double ws_idle_seconds = 0.0;
};

std::vector<Row> g_rows;
int g_failures = 0;
// AVX2-over-scalar nodes/s ratio from the W32 budgeted rows; 0 until
// measured (or when the machine / --dispatch pin rules AVX2 out).
double g_bb_simd_speedup = 0.0;
// Per-level scalar-relative speedups from the W32 dispatch rows
// (0 = level not run). compare_bench.py derives the same ratios from
// the rows; these fields are for humans reading the archived JSON.
double g_bb_speedup_avx2 = 0.0;
double g_bb_speedup_avx512 = 0.0;

void push_row(Row r) {
  r.nodes_per_sec = r.seconds > 0.0
                        ? static_cast<double>(r.visited_nodes) / r.seconds
                        : 0.0;
  std::printf(
      "%-10s %-18s threads=%u  %10.4fs  visited=%llu  capacity=%zu"
      "  (%.0f nodes/s, steals %llu/%llu)\n",
      r.instance.c_str(), r.kernel.c_str(), r.threads, r.seconds,
      static_cast<unsigned long long>(r.visited_nodes), r.capacity,
      r.nodes_per_sec, static_cast<unsigned long long>(r.ws_steals),
      static_cast<unsigned long long>(r.ws_spawned));
  g_rows.push_back(std::move(r));
}

Graph random_graph(NodeId n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder gb(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) gb.add_edge(u, v);
    }
  }
  return std::move(gb).build();
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

cut::CutResult run_bisection(const std::string& instance, const Graph& g,
                             cut::BranchBoundKernel kernel, unsigned threads,
                             const char* kernel_name,
                             const algo::PermutationGroup* sym = nullptr) {
  cut::BranchBoundOptions opts;
  opts.kernel = kernel;
  opts.num_threads = threads;
  opts.symmetry = sym;
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = cut::min_bisection_branch_bound(g, opts);
  const double secs = seconds_since(t0);
  push_row({instance, kernel_name, threads, secs, res.nodes_visited,
            res.capacity, 0.0, res.ws_spawned, res.ws_steals,
            res.ws_idle_seconds});
  return res;
}

// E23: the same node-budgeted bitset search at each pinned dispatch
// level. Budgeting decouples the measurement from closure — B16/W32 are
// exact-frontier instances — while keeping the visited count a
// deterministic level-invariant (the kernels are bit-identical by
// contract, so the search trace is too). Returns the avx2/scalar
// nodes-per-second ratio, or 0 when no AVX2 row ran.
double dispatch_case(const std::string& instance, const Graph& g,
                     std::uint64_t node_budget, bool include_avx512) {
  using simd::DispatchLevel;
  const DispatchLevel cap = simd::active_level();  // honors --dispatch pin
  const DispatchLevel restore = cap;
  double secs_by_level[3] = {0.0, 0.0, 0.0};
  std::uint64_t ref_nodes = 0;
  std::size_t ref_capacity = 0;
  for (const DispatchLevel level :
       {DispatchLevel::kScalar, DispatchLevel::kAvx2, DispatchLevel::kAvx512}) {
    if (level > cap) continue;
    if (level == DispatchLevel::kAvx512 && !include_avx512) continue;
    simd::set_active_level(level);
    cut::BranchBoundOptions opts;
    opts.kernel = cut::BranchBoundKernel::kBitset;
    opts.node_limit = node_budget;
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = cut::min_bisection_branch_bound(g, opts);
    const double secs = seconds_since(t0);
    const std::string name = "bb-bitset@" + std::string(simd::to_string(level));
    push_row({instance, name, 1, secs, res.nodes_visited, res.capacity, 0.0,
              res.ws_spawned, res.ws_steals, res.ws_idle_seconds});
    secs_by_level[static_cast<int>(level)] = secs;
    if (level == DispatchLevel::kScalar) {
      ref_nodes = res.nodes_visited;
      ref_capacity = res.capacity;
    } else if (res.nodes_visited != ref_nodes ||
               res.capacity != ref_capacity) {
      std::fprintf(stderr,
                   "MISMATCH %s: %s visited %llu nodes / capacity %zu, "
                   "scalar dispatch visited %llu / capacity %zu\n",
                   instance.c_str(), name.c_str(),
                   static_cast<unsigned long long>(res.nodes_visited),
                   res.capacity, static_cast<unsigned long long>(ref_nodes),
                   ref_capacity);
      ++g_failures;
    }
  }
  simd::set_active_level(restore);
  const double scalar = secs_by_level[static_cast<int>(DispatchLevel::kScalar)];
  const double avx2 = secs_by_level[static_cast<int>(DispatchLevel::kAvx2)];
  const double avx512 =
      secs_by_level[static_cast<int>(DispatchLevel::kAvx512)];
  if (scalar > 0.0) {
    // Each level is measured against scalar only — never against
    // another vector level, whose relative clocks flap under
    // frequency scaling (see compare_bench.py's per-level floors).
    if (avx2 > 0.0) g_bb_speedup_avx2 = scalar / avx2;
    if (avx512 > 0.0) g_bb_speedup_avx512 = scalar / avx512;
  }
  return (scalar > 0.0 && avx2 > 0.0) ? scalar / avx2 : 0.0;
}

// Work-stealing telemetry row: the budgeted bitset search fanned out
// over more workers than this machine may have cores — steal counters
// land in the JSON either way, and threads>1 rows are exempt from the
// node-count gate (the shared incumbent races).
void steal_telemetry_case(const std::string& instance, const Graph& g,
                          std::uint64_t node_budget) {
  cut::BranchBoundOptions opts;
  opts.kernel = cut::BranchBoundKernel::kBitset;
  opts.node_limit = node_budget;
  opts.num_threads = 4;
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = cut::min_bisection_branch_bound(g, opts);
  const double secs = seconds_since(t0);
  push_row({instance, "bb-bitset-ws", 4, secs, res.nodes_visited, res.capacity,
            0.0, res.ws_spawned, res.ws_steals, res.ws_idle_seconds});
}

void bisection_case(const std::string& instance, const Graph& g,
                    unsigned max_threads,
                    const algo::PermutationGroup* sym = nullptr) {
  const auto scalar = run_bisection(instance, g, cut::BranchBoundKernel::kScalar,
                                    1, "bb-scalar");
  const auto bitset = run_bisection(instance, g, cut::BranchBoundKernel::kBitset,
                                    1, "bb-bitset");
  if (bitset.capacity != scalar.capacity) {
    std::fprintf(stderr,
                 "MISMATCH %s: bb-bitset capacity %zu != bb-scalar %zu\n",
                 instance.c_str(), bitset.capacity, scalar.capacity);
    ++g_failures;
  }
  if (sym != nullptr) {
    const auto pruned = run_bisection(
        instance, g, cut::BranchBoundKernel::kBitset, 1, "bb-bitset-sym", sym);
    if (pruned.capacity != scalar.capacity) {
      std::fprintf(
          stderr, "MISMATCH %s: bb-bitset-sym capacity %zu != bb-scalar %zu\n",
          instance.c_str(), pruned.capacity, scalar.capacity);
      ++g_failures;
    }
  }
  if (max_threads > 1) {
    const auto par = run_bisection(instance, g, cut::BranchBoundKernel::kBitset,
                                   max_threads, "bb-bitset-par");
    if (par.capacity != scalar.capacity) {
      std::fprintf(
          stderr,
          "MISMATCH %s: bb-bitset-par capacity %zu != bb-scalar %zu\n",
          instance.c_str(), par.capacity, scalar.capacity);
      ++g_failures;
    }
  }
}

// Frontier instances the scalar reference cannot touch within the smoke
// budget: compare the plain bitset kernel against its symmetry-pruned
// form only. CCC16 under symmetry runs in well under a second in
// Release — the first exact 16-column instance inside the smoke budget.
void sym_frontier_case(const std::string& instance, const Graph& g,
                       const algo::PermutationGroup& sym) {
  const auto plain = run_bisection(instance, g, cut::BranchBoundKernel::kBitset,
                                   1, "bb-bitset");
  const auto pruned = run_bisection(
      instance, g, cut::BranchBoundKernel::kBitset, 1, "bb-bitset-sym", &sym);
  if (pruned.capacity != plain.capacity) {
    std::fprintf(stderr,
                 "MISMATCH %s: bb-bitset-sym capacity %zu != bb-bitset %zu\n",
                 instance.c_str(), pruned.capacity, plain.capacity);
    ++g_failures;
  }
}

void expansion_case(const std::string& instance, const Graph& g,
                    unsigned max_threads,
                    const algo::PermutationGroup* sym = nullptr) {
  expansion::ExactExpansionOptions base;
  base.max_states = 1ull << 28;
  base.keep_witnesses = false;

  const std::size_t mid = g.num_nodes() / 2;

  auto run = [&](unsigned threads, unsigned shard_bits,
                 const char* kernel_name,
                 const algo::PermutationGroup* group = nullptr) {
    expansion::ExactExpansionOptions opts = base;
    opts.num_threads = threads;
    opts.shard_bits = shard_bits;
    opts.symmetry = group;
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = expansion::exact_expansion_full(g, opts);
    const double secs = seconds_since(t0);
    // Symmetry-reduced rows record the states actually enumerated (the
    // real work); visited_states is the weighted coverage, 2^N always.
    push_row({instance, kernel_name, threads, secs, res.scanned_states,
              res.table[mid].ee, 0.0, res.ws_spawned, res.ws_steals,
              res.ws_idle_seconds});
    return res;
  };

  const auto serial = run(1, 0, "sweep-serial");
  // Sharded with a fixed shard count (deterministic regardless of the
  // worker count), first drained serially, then by the thread pool.
  const auto sharded = run(1, 4, "sweep-sharded");
  const auto par = max_threads > 1
                       ? run(max_threads, 0, "sweep-sharded-par")
                       : sharded;
  const auto symr =
      sym != nullptr ? run(1, 4, "sweep-sym", sym) : sharded;
  for (const auto* other : {&sharded, &par, &symr}) {
    for (std::size_t k = 1; k < serial.table.size(); ++k) {
      if (other->table[k].ee != serial.table[k].ee ||
          other->table[k].ne != serial.table[k].ne) {
        std::fprintf(stderr,
                     "MISMATCH %s: sharded sweep table differs from serial "
                     "at k=%zu (ee %zu vs %zu, ne %zu vs %zu)\n",
                     instance.c_str(), k, other->table[k].ee,
                     serial.table[k].ee, other->table[k].ne,
                     serial.table[k].ne);
        ++g_failures;
        break;
      }
    }
  }
}

void write_json(const std::string& path, bool smoke) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    ++g_failures;
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"exact_kernels\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"mismatches\": %d,\n", g_failures);
  std::fprintf(f, "  \"dispatch_detected\": \"%s\",\n",
               simd::to_string(simd::detected_level()));
  std::fprintf(f, "  \"dispatch_active\": \"%s\",\n",
               simd::to_string(simd::active_level()));
  std::fprintf(f, "  \"bb_simd_speedup\": %.3f,\n", g_bb_simd_speedup);
  std::fprintf(f,
               "  \"bb_simd_speedup_by_level\": "
               "{\"avx2\": %.3f, \"avx512\": %.3f},\n",
               g_bb_speedup_avx2, g_bb_speedup_avx512);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"instance\": \"%s\", \"kernel\": \"%s\", "
                 "\"threads\": %u, \"seconds\": %.6f, "
                 "\"visited_nodes\": %llu, \"capacity\": %zu, "
                 "\"nodes_per_sec\": %.1f, \"ws_spawned\": %llu, "
                 "\"ws_steals\": %llu, \"ws_idle_seconds\": %.6f}%s\n",
                 r.instance.c_str(), r.kernel.c_str(), r.threads, r.seconds,
                 static_cast<unsigned long long>(r.visited_nodes), r.capacity,
                 r.nodes_per_sec,
                 static_cast<unsigned long long>(r.ws_spawned),
                 static_cast<unsigned long long>(r.ws_steals),
                 r.ws_idle_seconds, i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), g_rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_exact_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--dispatch=", 11) == 0) {
      simd::DispatchLevel level = simd::DispatchLevel::kScalar;
      if (!simd::parse_level(argv[i] + 11, level)) {
        std::fprintf(stderr,
                     "unknown dispatch level '%s' "
                     "(want scalar, avx2, or avx512)\n",
                     argv[i] + 11);
        return 2;
      }
      if (!simd::set_active_level(level)) {
        std::fprintf(stderr,
                     "warning: --dispatch=%s exceeds this CPU's detected "
                     "level %s; keeping %s\n",
                     simd::to_string(level),
                     simd::to_string(simd::detected_level()),
                     simd::to_string(simd::active_level()));
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out=<path>] "
                   "[--dispatch=scalar|avx2|avx512]\n",
                   argv[0]);
      return 2;
    }
  }
  const unsigned hw = default_thread_count();
  const unsigned max_threads = hw > 1 ? hw : 1;
  std::printf(
      "exact-kernel bench (%s mode, %u hardware threads, "
      "simd detected=%s active=%s)\n",
      smoke ? "smoke" : "full", hw, simd::to_string(simd::detected_level()),
      simd::to_string(simd::active_level()));

  // Automorphism groups for the symmetry-pruned rows (E21). Random
  // instances get none — their generic graphs have trivial groups.
  const topo::Butterfly b4(4), b8(8);
  const topo::WrappedButterfly w8(8), w16(16);
  const topo::CubeConnectedCycles c8(8), c16(16);
  const algo::PermutationGroup gb4(b4.graph().num_nodes(),
                                   b4.automorphism_generators());
  const algo::PermutationGroup gb8(b8.graph().num_nodes(),
                                   b8.automorphism_generators());
  const algo::PermutationGroup gw8(w8.graph().num_nodes(),
                                   w8.automorphism_generators());
  const algo::PermutationGroup gw16(w16.graph().num_nodes(),
                                    w16.automorphism_generators());
  const algo::PermutationGroup gc8(c8.graph().num_nodes(),
                                   c8.automorphism_generators());
  const algo::PermutationGroup gc16(c16.graph().num_nodes(),
                                    c16.automorphism_generators());

  // --- branch-and-bound bisection, scalar vs bitset vs symmetry ---
  bisection_case("B4", b4.graph(), max_threads, &gb4);
  bisection_case("B8", b8.graph(), max_threads, &gb8);
  bisection_case("W8", w8.graph(), max_threads, &gw8);
  bisection_case("CCC8", c8.graph(), max_threads, &gc8);
  bisection_case("rand16", random_graph(16, 0.4, 7), max_threads);
  if (smoke) {
    // Previously infeasible inside the smoke budget; with orbit pruning
    // the exact CCC16 bisection closes in ~25k nodes.
    sym_frontier_case("CCC16", c16.graph(), gc16);
  } else {
    bisection_case("rand24", random_graph(24, 0.3, 11), max_threads);
    bisection_case("W16", w16.graph(), max_threads, &gw16);
    bisection_case("CCC16", c16.graph(), max_threads, &gc16);
  }

  // --- E23: dispatch trajectory + work-stealing telemetry on the exact
  // frontier (B16: 80 nodes, W32: 160 nodes). Node-budgeted so the rows
  // measure kernel throughput, not closure. W32 is the speedup metric —
  // at 160 nodes (3 mask words) the vector sweeps dominate; B16 rides
  // along to show the trajectory on the paper's own family.
  const topo::Butterfly b16(16);
  const topo::WrappedButterfly w32(32);
  const std::uint64_t budget = smoke ? 1'500'000ull : 8'000'000ull;
  dispatch_case("B16", b16.graph(), budget, !smoke);
  g_bb_simd_speedup = dispatch_case("W32", w32.graph(), budget, !smoke);
  if (g_bb_simd_speedup > 0.0) {
    std::printf("bb_simd_speedup (W32, avx2/scalar nodes/s): %.2fx\n",
                g_bb_simd_speedup);
  }
  steal_telemetry_case("W32", w32.graph(), budget);
  if (!smoke) {
    // Exact B16 closure: seeded with the constructive column-split
    // incumbent (the paper's upper bound, capacity 16) the bitset
    // kernel proves B16's bisection width within the full-bench budget.
    cut::BranchBoundOptions exact_opts;
    exact_opts.kernel = cut::BranchBoundKernel::kBitset;
    exact_opts.initial_bound = cut::column_split_bisection(b16).capacity + 1;
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = cut::min_bisection_branch_bound(b16.graph(), exact_opts);
    const double secs = seconds_since(t0);
    push_row({"B16", "bb-bitset-exact", 1, secs, res.nodes_visited,
              res.capacity, 0.0, res.ws_spawned, res.ws_steals,
              res.ws_idle_seconds});
    if (res.exactness != cut::Exactness::kExact) {
      std::fprintf(stderr, "MISMATCH B16: bb-bitset-exact did not close\n");
      ++g_failures;
    }
  }

  // --- exhaustive expansion sweep, serial vs sharded vs symmetry ---
  expansion_case("B4", b4.graph(), max_threads, &gb4);  // 12 nodes
  expansion_case("rand18", random_graph(18, 0.3, 5), max_threads);
  if (!smoke) {
    expansion_case("W8", w8.graph(), max_threads, &gw8);  // 24 nodes
    expansion_case("rand26", random_graph(26, 0.25, 3), max_threads);
  }

  write_json(out, smoke);
  if (g_failures != 0) {
    std::fprintf(stderr, "%d kernel mismatches\n", g_failures);
    return 1;
  }
  return 0;
}
