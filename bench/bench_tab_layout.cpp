// E16 — Sections 1.1/1.2 VLSI facts: a concrete valid layout of Bn with
// quadratic area, next to Thompson's lower bound A >= BW(Bn)^2 and the
// optimal (1 ± o(1)) n^2 of Avior et al. [3].
#include <iostream>

#include "io/table.hpp"
#include "layout/butterfly_layout.hpp"
#include "layout/grid_layout.hpp"
#include "topology/butterfly.hpp"

int main() {
  using namespace bfly;
  std::cout << "E16 / VLSI layout — measured area vs Thompson's BW^2\n\n";

  io::Table t({"n", "width", "height", "area", "area/n^2",
               "Thompson LB (BW=n)", "optimal [3]"});
  for (const std::uint32_t n : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const topo::Butterfly bf(n);
    const auto l = layout::layout_butterfly(bf);
    layout::validate_layout(bf.graph(), l);  // throws if invalid
    t.add(std::to_string(n), std::to_string(l.width()),
          std::to_string(l.height()), std::to_string(l.area()),
          io::fmt(static_cast<double>(l.area()) /
                      (static_cast<double>(n) * n),
                  3),
          std::to_string(layout::thompson_area_lower_bound(n)),
          "~" + std::to_string(static_cast<std::uint64_t>(n) * n));
  }
  t.print(std::cout);
  std::cout << "\nEvery layout is machine-validated (rectilinear wires, no\n"
               "same-direction overlaps). The simple channel construction\n"
               "has a constant-factor gap to the optimal n^2; Thompson's\n"
               "bound holds with the folklore BW = n and, a fortiori, with\n"
               "the paper's asymptotic 0.83n.\n";
  return 0;
}
