#!/usr/bin/env python3
"""Bench regression gate: diff fresh bench JSON against committed baselines.

Usage:
    compare_bench.py [--baseline-dir bench/baselines] FRESH.json [FRESH2.json ...]
    compare_bench.py --update-baseline FRESH.json [...]

Three input formats are recognized by content:

  * the exact-kernel bench (``{"bench": "exact_kernels", "rows": [...]}``):
    rows are keyed by (instance, kernel, threads). Serial rows carry
    deterministic ``visited_nodes`` counts, so ANY increase over the
    baseline fails the gate — that is the strong, noise-free signal that
    a search-kernel change regressed its pruning. Rows with threads > 1
    are exempt from the node gate (parallel node counts race on the
    incumbent) but still face the wall-clock gate.
  * the routing simulator (``{"bench": "routing_sim", "rows": [...]}``):
    rows are keyed by (instance, traffic, threads). The engine is
    deterministic for ANY thread count, so the makespan column is gated
    like a visited-node count on every row — any drift fails. The
    cross-run wall gate is skipped (the in-binary throughput floors are
    the performance gate); instead, each row carrying a
    ``min_phops_per_s`` floor is re-checked here when the fresh run had
    its perf gates on (``"gated": true``).
  * google-benchmark output (``{"benchmarks": [...]}``, e.g.
    BENCH_solvers.json): entries are keyed by name and face the
    wall-clock gate only.

The wall-clock gate fails a row when it is both >25% slower than the
baseline AND slower by more than the absolute noise floor (0.1 s) —
micro-rows flap by multiples under CI jitter, and for them the
node-count gate is the meaningful one anyway.

A baseline row missing from the fresh output fails (a silently dropped
instance is a regression too); fresh rows absent from the baseline are
reported but pass, so adding instances does not require a lockstep
baseline update. ``--update-baseline`` rewrites the committed files from
the fresh ones.

Exit status: 0 clean, 1 regression (or malformed input), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys

REL_TOLERANCE = 0.25  # >25% slower fails...
ABS_FLOOR_SECONDS = 0.1  # ...but only beyond CI timing noise

# SIMD dispatch gate: each vector level is compared against the SAME
# RUN's scalar row (the ``bb-bitset@<level>`` dispatch rows), never
# against another vector level — racing avx512 against avx2 across runs
# traded wins under frequency scaling (ROADMAP item 4). Per-level
# floors sit below the >= 1.5x target so shared-runner jitter cannot
# flap the build, while a level silently degrading toward scalar speed
# still fails. AVX-512 gets a lower floor: license-based downclocking
# legitimately eats part of its win.
SPEEDUP_FLOORS = {"avx2": 1.2, "avx512": 1.1}

_TIME_UNITS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def load(path: pathlib.Path) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def rows_by_key(doc: dict) -> dict[tuple, dict]:
    """Normalizes either format to {key: {"seconds": s, "nodes": n|None}}."""
    out: dict[tuple, dict] = {}
    if doc.get("bench") == "routing_sim":
        for r in doc["rows"]:
            key = (r["instance"], r["traffic"], r["threads"])
            out[key] = {
                "seconds": float(r["seconds"]),
                # Thread-count-deterministic, so gated on every row.
                "nodes": int(r["makespan"]),
                "metric": "makespan",
                # Cross-run wall times flap with the runner; the
                # in-binary min_phops_per_s floors are the perf gate.
                "no_wall": True,
            }
    elif "rows" in doc:  # exact-kernel format
        for r in doc["rows"]:
            key = (r["instance"], r["kernel"], r["threads"])
            nodes = r.get("visited_nodes")
            if r["threads"] > 1:
                nodes = None  # racy under the shared incumbent
            out[key] = {"seconds": float(r["seconds"]), "nodes": nodes}
    elif "benchmarks" in doc:  # google-benchmark format
        for b in doc["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            unit = _TIME_UNITS.get(b.get("time_unit", "ns"), 1e-9)
            out[(b["name"],)] = {
                "seconds": float(b["real_time"]) * unit,
                "nodes": None,
            }
    else:
        raise ValueError("unrecognized bench JSON (neither rows nor benchmarks)")
    return out


_DISPATCH_LEVELS = {"scalar": 0, "avx2": 1, "avx512": 2}


def dispatch_rank(doc: dict) -> int:
    """Fresh/baseline docs written before the dispatch fields existed
    rank highest — every row is assumed reachable, as before."""
    return _DISPATCH_LEVELS.get(str(doc.get("dispatch_active", "avx512")), 2)


def row_dispatch_rank(key: tuple) -> int:
    """Rows named ``bb-bitset@<level>`` need that dispatch level to run;
    everything else runs anywhere."""
    kernel = str(key[1]) if len(key) > 1 else ""
    if "@" not in kernel:
        return 0
    return _DISPATCH_LEVELS.get(kernel.rsplit("@", 1)[1], 0)


def compare(fresh: dict[tuple, dict], base: dict[tuple, dict],
            label: str, fresh_rank: int = 2, base_rank: int = 2) -> list[str]:
    failures = []
    # A run pinned below the baseline's dispatch level (scalar-only
    # machine, or the CI scalar-fallback leg's --dispatch=scalar) cannot
    # reproduce the baseline's vector timings; only the deterministic
    # node counts stay comparable.
    gate_wall = fresh_rank >= base_rank
    if not gate_wall:
        print(f"note: {label}: fresh run pinned to a lower dispatch level"
              " than the baseline; wall-clock gate skipped, node gate kept")
    for key, b in sorted(base.items()):
        name = "/".join(str(k) for k in key)
        f = fresh.get(key)
        if f is None:
            if row_dispatch_rank(key) > fresh_rank:
                print(f"note: {label}: baseline row {name} needs a dispatch"
                      " level the fresh run does not have — skipped")
                continue
            failures.append(f"{label}: row {name} vanished from the fresh run")
            continue
        if b["nodes"] is not None and f["nodes"] is not None \
                and f["nodes"] > b["nodes"]:
            metric = b.get("metric", "visited-node count")
            failures.append(
                f"{label}: {name} {metric} {f['nodes']}"
                f" (baseline {b['nodes']}) — deterministic regression")
        slower = f["seconds"] - b["seconds"]
        # Pinned-dispatch rows (bb-bitset@<level>) are gated within-run
        # by the per-level speedup floors instead: their cross-run wall
        # times flap with CPU frequency scaling. Node counts stay exact.
        # Rows flagged no_wall (routing_sim) carry their own in-binary
        # throughput floors for the same reason.
        if b.get("no_wall") or f.get("no_wall"):
            continue
        if len(key) > 1 and "@" in str(key[1]):
            continue
        if gate_wall and slower > ABS_FLOOR_SECONDS and \
                f["seconds"] > b["seconds"] * (1.0 + REL_TOLERANCE):
            failures.append(
                f"{label}: {name} took {f['seconds']:.3f}s"
                f" (baseline {b['seconds']:.3f}s, +{slower:.3f}s)")
    for key in sorted(set(fresh) - set(base)):
        name = "/".join(str(k) for k in key)
        print(f"note: {label}: new row {name} has no baseline"
              " (run --update-baseline to pin it)")
    return failures


def level_speedups(rows: dict[tuple, dict]) -> dict[str, float]:
    """Within-run vector-over-scalar speedups from the bb-bitset@<level>
    dispatch rows: for each level, seconds(scalar)/seconds(level) on the
    instance with the most scalar signal (largest scalar time). The
    dispatch kernels are bit-identical by contract, so the time ratio is
    the nodes/s ratio."""
    by_instance: dict[str, dict[str, float]] = {}
    for key, v in rows.items():
        if len(key) < 3 or key[2] != 1:
            continue
        kernel = str(key[1])
        if not kernel.startswith("bb-bitset@"):
            continue
        level = kernel.rsplit("@", 1)[1]
        by_instance.setdefault(str(key[0]), {})[level] = v["seconds"]
    best_scalar = -1.0
    picked: dict[str, float] = {}
    for levels in by_instance.values():
        scalar = levels.get("scalar", 0.0)
        if scalar <= 0.0 or scalar <= best_scalar:
            continue
        best_scalar = scalar
        picked = {lvl: scalar / secs for lvl, secs in levels.items()
                  if lvl != "scalar" and secs > 0.0}
    return picked


def speedup_failures(fresh_rows: dict[tuple, dict],
                     base_rows: dict[tuple, dict], label: str) -> list[str]:
    """Gates each vector level against the SAME run's scalar row.

    A level present in the baseline but absent from the fresh run is
    skipped with a note (scalar-only machine, or a --dispatch pin) —
    that is the fallback configuration, not a kernel regression. Levels
    are never compared against each other.
    """
    fresh_sp = level_speedups(fresh_rows)
    base_sp = level_speedups(base_rows)
    failures = []
    for level, floor in sorted(SPEEDUP_FLOORS.items()):
        if level not in base_sp:
            continue  # the baseline never measured this level
        if level not in fresh_sp:
            print(f"note: {label}: no {level} dispatch row in the fresh run"
                  " (machine capability or pin); speedup gate skipped")
            continue
        sp = fresh_sp[level]
        if sp < floor:
            failures.append(
                f"{label}: {level}-over-scalar speedup {sp:.2f}x is below"
                f" the {floor:.2f}x floor (baseline {base_sp[level]:.2f}x)"
                " — SIMD dispatch regression")
        else:
            print(f"{label}: {level}-over-scalar speedup {sp:.2f}x"
                  f" (baseline {base_sp[level]:.2f}x, floor {floor:.2f}x)")
    return failures


def routing_sim_failures(doc: dict, label: str) -> list[str]:
    """Re-checks the routing-sim in-binary gates from the emitted JSON:
    the recorded failure count must be zero, and every row carrying a
    min_phops_per_s floor must clear it when the run had its perf gates
    on. (The bench already exits nonzero on these; re-deriving them here
    keeps the gate honest even when a wrapper swallowed the exit code.)
    """
    if doc.get("bench") != "routing_sim":
        return []
    failures = []
    if int(doc.get("failures", 0)) != 0:
        failures.append(f"{label}: bench recorded"
                        f" {doc['failures']} in-binary gate failure(s)")
    if not doc.get("gated", False):
        print(f"note: {label}: perf gates were off in this run"
              " (checked/sanitized build); throughput floors skipped")
        return failures
    for r in doc.get("rows", []):
        floor = float(r.get("min_phops_per_s", 0.0))
        if floor <= 0.0:
            continue
        got = float(r.get("phops_per_s", 0.0))
        name = f"{r['instance']}/{r['traffic']}/{r['threads']}"
        if got < floor:
            failures.append(
                f"{label}: {name} sustained {got / 1e6:.2f}M packets·hops/s,"
                f" below the {floor / 1e6:.2f}M floor")
        else:
            print(f"{label}: {name} {got / 1e6:.2f}M packets·hops/s"
                  f" (floor {floor / 1e6:.2f}M)")
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", nargs="+", type=pathlib.Path,
                    help="fresh bench JSON files to gate")
    ap.add_argument("--baseline-dir", type=pathlib.Path,
                    default=pathlib.Path(__file__).parent / "baselines")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the committed baselines from the fresh files")
    args = ap.parse_args()

    if args.update_baseline:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for path in args.fresh:
            dest = args.baseline_dir / path.name
            shutil.copyfile(path, dest)
            print(f"baseline updated: {dest}")
        return 0

    failures: list[str] = []
    for path in args.fresh:
        base_path = args.baseline_dir / path.name
        if not base_path.exists():
            failures.append(f"no committed baseline {base_path} for {path}"
                            " (run --update-baseline once)")
            continue
        try:
            fresh_doc = load(path)
            base_doc = load(base_path)
            fresh_rows = rows_by_key(fresh_doc)
            base_rows = rows_by_key(base_doc)
        except (ValueError, KeyError, json.JSONDecodeError) as e:
            failures.append(f"{path}: {e}")
            continue
        failures.extend(compare(fresh_rows, base_rows, path.name,
                                dispatch_rank(fresh_doc),
                                dispatch_rank(base_doc)))
        failures.extend(speedup_failures(fresh_rows, base_rows, path.name))
        failures.extend(routing_sim_failures(fresh_doc, path.name))

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print(f"bench gate clean ({len(args.fresh)} file(s))")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
