// E18 — Section 1.5's related networks, summarized: bisection widths of
// the hypercube, shuffle-exchange, and de Bruijn networks next to the
// paper's butterfly-family values.
#include <iostream>

#include "cut/brute_force.hpp"
#include "cut/multilevel.hpp"
#include "io/table.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/debruijn.hpp"
#include "topology/hypercube.hpp"
#include "topology/shuffle_exchange.hpp"
#include "topology/wrapped_butterfly.hpp"

int main() {
  using namespace bfly;
  std::cout << "E18 / Section 1.5 — bisection widths across the "
               "hypercube family\n\n";

  io::Table t({"network", "N", "BW measured", "tag", "known value"});
  {
    const topo::Hypercube q4(4);
    const auto r = cut::min_bisection_exhaustive(q4.graph());
    t.add("hypercube Q4", "16", std::to_string(r.capacity), "exact",
          "2^(d-1) = 8");
  }
  {
    const topo::Hypercube q7(7);
    const auto r = cut::min_bisection_multilevel(q7.graph());
    t.add("hypercube Q7", "128", std::to_string(r.capacity), "heuristic",
          "2^(d-1) = 64");
  }
  {
    const topo::ShuffleExchange se(4);
    const auto r = cut::min_bisection_exhaustive(se.graph());
    t.add("shuffle-exchange SE4", "16", std::to_string(r.capacity),
          "exact", "Theta(n/log n)");
  }
  {
    const topo::ShuffleExchange se(8);
    const auto r = cut::min_bisection_multilevel(se.graph());
    t.add("shuffle-exchange SE8", "256", std::to_string(r.capacity),
          "heuristic", "Theta(n/log n)");
  }
  {
    const topo::DeBruijn db(4);
    const auto r = cut::min_bisection_exhaustive(db.graph());
    t.add("de Bruijn dB4", "16", std::to_string(r.capacity), "exact",
          "Theta(n/log n)");
  }
  {
    const topo::DeBruijn db(8);
    const auto r = cut::min_bisection_multilevel(db.graph());
    t.add("de Bruijn dB8", "256", std::to_string(r.capacity),
          "heuristic", "Theta(n/log n)");
  }
  {
    const topo::Butterfly b8(8);
    t.add("butterfly B8", "32", "8", "exact (E3)", "paper: ~0.83n asym.");
    const topo::WrappedButterfly w8(8);
    t.add("wrapped W8", "24", "8", "exact (E5)", "paper: n");
    const topo::CubeConnectedCycles c8(8);
    t.add("CCC8", "24", "4", "exact (E5)", "paper: n/2");
  }
  t.print(std::cout);
  return 0;
}
