// E9 — Section 1.2 routing motivation: with one random-destination
// packet per node, roughly N/4 messages cross any bisection in each
// direction, so routing needs at least ~N/(4 BW) steps. We simulate
// store-and-forward routing on Bn and Wn and report the measured
// makespan next to the bound.
#include <iostream>

#include "cut/constructive.hpp"
#include "io/table.hpp"
#include "routing/butterfly_routing.hpp"
#include "routing/experiments.hpp"
#include "topology/butterfly.hpp"
#include "topology/wrapped_butterfly.hpp"

int main() {
  using namespace bfly;
  std::cout << "E9 / Section 1.2 — routing time vs the bisection bound\n\n";

  io::Table t({"net", "N", "BW used", "crossing msgs (≈N/4)",
               "bound N/(4BW)", "makespan", "max link load"});
  for (const std::uint32_t n : {8u, 16u, 32u, 64u}) {
    const topo::Butterfly bf(n);
    const auto cutres = cut::column_split_bisection(bf);
    const auto route = [&](NodeId s, NodeId d) {
      return routing::route_bn(bf, s, d);
    };
    const auto rep = routing::random_destination_experiment(
        bf.graph(), route, cutres.sides, cutres.capacity, 42 + n);
    t.add("B" + std::to_string(n), std::to_string(bf.num_nodes()),
          std::to_string(cutres.capacity),
          std::to_string(rep.cross_bisection),
          io::fmt(rep.bisection_time_bound, 2),
          std::to_string(rep.sim.makespan),
          std::to_string(rep.sim.max_link_load));
  }
  for (const std::uint32_t n : {8u, 16u, 32u, 64u}) {
    const topo::WrappedButterfly wb(n);
    const auto cutres = cut::column_split_bisection(wb);
    const auto route = [&](NodeId s, NodeId d) {
      return routing::route_wn(wb, s, d);
    };
    const auto rep = routing::random_destination_experiment(
        wb.graph(), route, cutres.sides, cutres.capacity, 4242 + n);
    t.add("W" + std::to_string(n), std::to_string(wb.num_nodes()),
          std::to_string(cutres.capacity),
          std::to_string(rep.cross_bisection),
          io::fmt(rep.bisection_time_bound, 2),
          std::to_string(rep.sim.makespan),
          std::to_string(rep.sim.max_link_load));
  }
  t.print(std::cout);

  std::cout << "\nReading: makespan always dominates the bisection bound;\n"
               "with one packet per node the bound is loose (the paper's\n"
               "argument is about aggregate bandwidth), but it scales the\n"
               "same way the measurements do.\n";
  return 0;
}
