// E9 — Section 1.2 routing motivation, now driven by the phase-based
// SoA engine (DESIGN.md §15): with one random-destination packet per
// node, roughly N/4 messages cross any bisection in each direction, so
// routing needs at least ~N/(4 BW) steps. We route the workload through
// SimEngine on Bn and Wn and report the measured makespan next to the
// bound, with the slowdown makespan/(N/(4·BW)) as the headline column.
//
// BW provenance: exact (branch-and-bound) for B4/B8 where the solver is
// instant; the constructive column-split value everywhere else — for
// butterflies those coincide (the paper's Theorem 1 story), so the
// slowdown column is against the real bisection width, not a heuristic.
#include <iostream>

#include "cut/branch_bound.hpp"
#include "cut/constructive.hpp"
#include "io/table.hpp"
#include "routing/sim_engine.hpp"
#include "routing/traffic.hpp"
#include "topology/butterfly.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace {

using namespace bfly;

struct RowData {
  std::size_t bw = 0;
  std::string bw_kind;
  routing::TrafficSet traffic;
  routing::EngineStats stats;
};

template <typename Topo>
RowData run_row(const Topo& topo, const cut::CutResult& cutres,
                const std::string& bw_kind, std::uint64_t seed) {
  RowData row;
  row.bw = cutres.capacity;
  row.bw_kind = bw_kind;
  routing::TrafficSpec spec;  // uniform, one packet per node
  spec.seed = seed;
  row.traffic = routing::make_traffic(topo, spec, &cutres.sides);
  routing::SimEngine eng(topo.graph());
  eng.load(row.traffic.paths);
  row.stats = eng.run();
  return row;
}

void add_row(io::Table& t, const std::string& name, std::size_t num_nodes,
             const RowData& row) {
  const auto bound = routing::traffic_bound(row.traffic, row.bw,
                                            row.stats.max_link_load);
  t.add(name, std::to_string(num_nodes),
        std::to_string(row.bw) + " (" + row.bw_kind + ")",
        std::to_string(std::max(row.traffic.cross_ab, row.traffic.cross_ba)),
        io::fmt(bound.c14_bound, 2), std::to_string(row.stats.makespan),
        std::to_string(row.stats.max_link_load),
        bound.c14_bound > 0.0
            ? io::fmt(row.stats.makespan / bound.c14_bound, 2)
            : "-");
}

// "B" + std::to_string(n) via append — GCC 12's -Wrestrict misfires on
// the insert-based operator+(const char*, string&&) under -O2.
std::string tag(const char* prefix, std::uint32_t n) {
  std::string s(prefix);
  s += std::to_string(n);
  return s;
}

}  // namespace

int main() {
  using namespace bfly;
  std::cout << "E9 / Section 1.2 — routing time vs the bisection bound\n"
               "(phase-driven SoA engine, uniform:ppn=1 traffic)\n\n";

  io::Table t({"net", "N", "BW (source)", "max dir crossings",
               "bound N/(4BW)", "makespan", "max link load", "slowdown"});

  for (const std::uint32_t n : {4u, 8u, 16u, 64u, 256u, 1024u}) {
    const topo::Butterfly bf(n);
    const auto cons = cut::column_split_bisection(bf);
    if (n <= 8) {
      // Exact BW from the branch-and-bound solver; the constructive cut
      // must agree (Theorem 1), so assert rather than silently report.
      const auto exact = cut::min_bisection_branch_bound(bf.graph());
      BFLY_CHECK(exact.capacity == cons.capacity,
                 "constructive cut disagrees with exact BW");
      add_row(t, tag("B", n), bf.num_nodes(),
              run_row(bf, exact, "exact", 42 + n));
    } else {
      add_row(t, tag("B", n), bf.num_nodes(),
              run_row(bf, cons, "constructive", 42 + n));
    }
  }
  for (const std::uint32_t n : {8u, 16u, 32u, 64u}) {
    const topo::WrappedButterfly wb(n);
    const auto cons = cut::column_split_bisection(wb);
    add_row(t, tag("W", n), wb.num_nodes(),
            run_row(wb, cons, "constructive", 4242 + n));
  }
  t.print(std::cout);

  std::cout << "\nReading: makespan always dominates the bisection bound;\n"
               "with one packet per node the bound is loose (the paper's\n"
               "argument is about aggregate bandwidth), and the slowdown\n"
               "column shrinks as ppn grows — bench_routing_sim's ppn=16\n"
               "rows sit near 5x, the cut-saturating scenario within 2x\n"
               "of its certified per-instance bound.\n";
  return 0;
}
