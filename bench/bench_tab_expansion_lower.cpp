// E6 — Section 4.3 LOWER-bound table:
//   EE(Wn,k) >= (4-o(1)) k/log k   (k = o(n),      Lemma 4.2)
//   NE(Wn,k) >= (1-o(1)) k/log k   (k = o(n),      Lemma 4.5)
//   EE(Bn,k) >= (2-o(1)) k/log k   (k = o(sqrt n), Lemma 4.8)
//   NE(Bn,k) >= (1/2-o(1)) k/log k (k = o(sqrt n), Lemma 4.11)
//
// Columns: the exact (or heuristic) minimum over sets of size k, the
// credit-scheme lower bound evaluated on the minimizing set, and the
// paper's asymptotic coefficient for reference. "min * log k / k" is the
// empirical coefficient to compare against the paper's constant.
#include <cmath>
#include <iostream>

#include "expansion/constructive_sets.hpp"
#include "expansion/credit_scheme.hpp"
#include "expansion/expansion.hpp"
#include "expansion/local_search.hpp"
#include "io/table.hpp"
#include "topology/butterfly.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace {

using namespace bfly;

double coeff(std::size_t value, std::size_t k) {
  return static_cast<double>(value) * std::log2(static_cast<double>(k)) /
         static_cast<double>(k);
}

// Warm-start option sets: whenever a paper construction produces a set of
// exactly size k, hand it to the local search as a seed.
template <typename MakeSet>
expansion::LocalSearchOptions seeded(std::size_t k, std::uint32_t max_delta,
                                     MakeSet&& make) {
  expansion::LocalSearchOptions opts;
  for (std::uint32_t delta = 1; delta <= max_delta; ++delta) {
    auto set = make(delta);
    if (set.size() == k) opts.seed_sets.push_back(std::move(set));
  }
  return opts;
}

}  // namespace

int main() {
  std::cout << "E6 / Section 4.3 lower bounds — min expansion vs paper "
               "coefficients\n\n";

  // ---- EE(Wn, k) and NE(Wn, k): exact on W8, heuristic on W64 --------
  {
    const topo::WrappedButterfly w8(8);
    const auto table = expansion::exact_expansion(w8.graph());
    io::Table t({"net", "k", "min EE (exact)", "EE*logk/k (paper: 4)",
                 "min NE (exact)", "NE*logk/k (paper: 1)"});
    for (const std::size_t k : {2u, 3u, 4u, 6u, 8u, 12u}) {
      t.add("W8", std::to_string(k), std::to_string(table[k].ee),
            io::fmt(coeff(table[k].ee, k), 3), std::to_string(table[k].ne),
            io::fmt(coeff(table[k].ne, k), 3));
    }
    std::cout << "Wn exact (full subset sweep of W8):\n";
    t.print(std::cout);
  }
  {
    const topo::WrappedButterfly w64(64);
    io::Table t({"net", "k", "min EE (heur)", "EE*logk/k (paper: 4)",
                 "credit LB", "min NE (heur)", "NE*logk/k (paper: 1)"});
    for (const std::size_t k : {4u, 8u, 12u, 24u, 32u}) {
      const auto ee_opts = seeded(k, 4, [&](std::uint32_t d) {
        return expansion::wn_ee_set(w64, d);
      });
      const auto ne_opts = seeded(k, 4, [&](std::uint32_t d) {
        return expansion::wn_ne_set(w64, d);
      });
      const auto ee =
          expansion::min_ee_set_local_search(w64.graph(), k, ee_opts);
      const auto ne =
          expansion::min_ne_set_local_search(w64.graph(), k, ne_opts);
      const auto credit = expansion::credit_edge_wn(w64, ee.set);
      t.add("W64", std::to_string(k), std::to_string(ee.objective),
            io::fmt(coeff(ee.objective, k), 3),
            io::fmt(credit.implied_lower_bound, 2),
            std::to_string(ne.objective),
            io::fmt(coeff(ne.objective, k), 3));
    }
    std::cout << "\nWn heuristic minima + Lemma 4.2 credit bound (W64, "
                 "k = o(n) regime):\n";
    t.print(std::cout);
  }

  // ---- EE(Bn, k) and NE(Bn, k) ---------------------------------------
  {
    const topo::Butterfly b4(4);
    const auto table = expansion::exact_expansion(b4.graph());
    io::Table t({"net", "k", "min EE (exact)", "EE*logk/k (paper: 2)",
                 "min NE (exact)", "NE*logk/k (paper: 0.5)"});
    for (const std::size_t k : {2u, 3u, 4u, 6u, 8u}) {
      t.add("B4", std::to_string(k), std::to_string(table[k].ee),
            io::fmt(coeff(table[k].ee, k), 3), std::to_string(table[k].ne),
            io::fmt(coeff(table[k].ne, k), 3));
    }
    std::cout << "\nBn exact (full subset sweep of B4):\n";
    t.print(std::cout);
  }
  {
    // B8: 2^32 subsets are out of reach, but C(32, k) enumeration gives
    // exact minima for small k — precisely the k = o(sqrt n) regime the
    // Bn lower bounds live in.
    const topo::Butterfly b8(8);
    io::Table t({"net", "k", "min EE (exact)", "EE*logk/k (paper: 2)",
                 "min NE (exact)", "NE*logk/k (paper: 0.5)"});
    for (const std::size_t k : {2u, 3u, 4u, 5u, 6u}) {
      const auto e = expansion::exact_expansion_of_size(b8.graph(), k);
      t.add("B8", std::to_string(k), std::to_string(e.ee),
            io::fmt(coeff(e.ee, k), 3), std::to_string(e.ne),
            io::fmt(coeff(e.ne, k), 3));
    }
    std::cout << "\nBn exact for small k (combination enumeration on B8):\n";
    t.print(std::cout);
  }
  {
    const topo::Butterfly b64(64);
    io::Table t({"net", "k", "min EE (heur)", "EE*logk/k (paper: 2)",
                 "credit LB", "min NE (heur)", "NE*logk/k (paper: 0.5)"});
    for (const std::size_t k : {4u, 8u, 12u, 24u}) {
      const auto ee_opts = seeded(k, 4, [&](std::uint32_t d) {
        return expansion::bn_ee_set(b64, d);
      });
      const auto ne_opts = seeded(k, 4, [&](std::uint32_t d) {
        return expansion::bn_ne_set(b64, d);
      });
      const auto ee =
          expansion::min_ee_set_local_search(b64.graph(), k, ee_opts);
      const auto ne =
          expansion::min_ne_set_local_search(b64.graph(), k, ne_opts);
      const auto credit = expansion::credit_edge_bn(b64, ee.set);
      t.add("B64", std::to_string(k), std::to_string(ee.objective),
            io::fmt(coeff(ee.objective, k), 3),
            io::fmt(credit.implied_lower_bound, 2),
            std::to_string(ne.objective),
            io::fmt(coeff(ne.objective, k), 3));
    }
    std::cout << "\nBn heuristic minima + Lemma 4.8 credit bound (B64, "
                 "k = o(sqrt n) regime):\n";
    t.print(std::cout);
  }

  std::cout << "\nReading: empirical coefficients sit at or above the\n"
               "paper's lower-bound constants (4, 1, 2, 1/2) and below the\n"
               "upper-bound constants of E7; small-k values are inflated\n"
               "by the o(1) terms.\n";
  return 0;
}
