// E7 — Section 4.3 UPPER-bound table, regenerated from the paper's own
// extremal constructions:
//   EE(Wn,k) <= (4+o(1)) k/log k  (Lemma 4.1,  sub-butterfly of Wn)
//   NE(Wn,k) <= (3+o(1)) k/log k  (Lemma 4.4,  two sub-butterflies)
//   EE(Bn,k) <= (2+o(1)) k/log k  (Lemma 4.7,  input-anchored)
//   NE(Bn,k) <= (1+o(1)) k/log k  (Lemma 4.10, output-anchored pair)
#include <cmath>
#include <iostream>

#include "expansion/constructive_sets.hpp"
#include "expansion/expansion.hpp"
#include "io/table.hpp"
#include "topology/butterfly.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace {

double coeff(std::size_t value, std::size_t k) {
  return static_cast<double>(value) * std::log2(static_cast<double>(k)) /
         static_cast<double>(k);
}

}  // namespace

int main() {
  using namespace bfly;
  std::cout << "E7 / Section 4.3 upper bounds — the paper's extremal sets, "
               "measured\n\n";
  const topo::WrappedButterfly wn(1024);
  const topo::Butterfly bn(1024);

  {
    io::Table t({"delta", "k", "EE(Wn) set boundary",
                 "coeff (paper -> 4)", "NE(Wn) set boundary",
                 "coeff (paper -> 3)"});
    for (std::uint32_t delta = 1; delta <= 6; ++delta) {
      const auto ee_set = expansion::wn_ee_set(wn, delta);
      const auto ne_set = expansion::wn_ne_set(wn, delta);
      const auto ee = expansion::edge_boundary(wn.graph(), ee_set);
      const auto ne = expansion::node_boundary(wn.graph(), ne_set);
      t.add(std::to_string(delta), std::to_string(ee_set.size()),
            std::to_string(ee), io::fmt(coeff(ee, ee_set.size()), 4),
            std::to_string(ne), io::fmt(coeff(ne, ne_set.size()), 4));
    }
    std::cout << "W1024 (N = " << wn.num_nodes() << "):\n";
    t.print(std::cout);
  }
  {
    io::Table t({"delta", "k", "EE(Bn) set boundary",
                 "coeff (paper -> 2)", "NE(Bn) set boundary",
                 "coeff (paper -> 1)"});
    for (std::uint32_t delta = 1; delta <= 6; ++delta) {
      const auto ee_set = expansion::bn_ee_set(bn, delta);
      const auto ne_set = expansion::bn_ne_set(bn, delta);
      const auto ee = expansion::edge_boundary(bn.graph(), ee_set);
      const auto ne = expansion::node_boundary(bn.graph(), ne_set);
      t.add(std::to_string(delta), std::to_string(ee_set.size()),
            std::to_string(ee), io::fmt(coeff(ee, ee_set.size()), 4),
            std::to_string(ne), io::fmt(coeff(ne, ne_set.size()), 4));
    }
    std::cout << "\nB1024 (N = " << bn.num_nodes() << "):\n";
    t.print(std::cout);
  }

  std::cout << "\nReading: the k-entries of the NE rows use the Lemma 4.4 /\n"
               "4.10 sets (k = (delta+1) 2^(delta+1)); coefficients converge\n"
               "to the paper's constants 4, 3, 2, 1 as delta grows.\n";
  return 0;
}
