// E5 — Section 3: BW(Wn) = n (Lemma 3.2) and BW(CCCn) = n/2
// (Lemma 3.3, originally Manabe et al.). Exact optima at materializable
// sizes; constructive cuts as upper bounds beyond.
#include <iostream>

#include "cut/branch_bound.hpp"
#include "cut/constructive.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "cut/multilevel.hpp"
#include "io/table.hpp"
#include "topology/ccc.hpp"
#include "topology/wrapped_butterfly.hpp"

int main() {
  using namespace bfly;
  std::cout << "E5 / Section 3 — bisection width of Wn and CCCn\n\n";

  {
    io::Table t({"n", "N = n log n", "paper BW", "measured", "tag"});
    for (const std::uint32_t n : {4u, 8u, 16u, 32u, 64u, 256u, 1024u}) {
      const topo::WrappedButterfly wb(n);
      std::string measured;
      const char* tag;
      if (n <= 16) {
        cut::BranchBoundOptions opts;
        opts.initial_bound = n;
        const auto r = cut::min_bisection_branch_bound(wb.graph(), opts);
        measured = std::to_string(std::min<std::size_t>(r.capacity, n));
        tag = "exact (branch & bound)";
      } else if (n <= 64) {
        const auto fm = cut::min_bisection_fiduccia_mattheyses(wb.graph());
        measured = std::to_string(
            std::min<std::size_t>(fm.capacity, n));
        tag = "heuristic UB (= column split)";
      } else {
        const auto ml = cut::min_bisection_multilevel(wb.graph());
        measured = std::to_string(std::min<std::size_t>(ml.capacity, n));
        tag = "multilevel UB (= column split)";
      }
      t.add(std::to_string(n), std::to_string(wb.num_nodes()),
            std::to_string(n), measured, tag);
    }
    std::cout << "BW(Wn) = n:\n";
    t.print(std::cout);
  }

  {
    io::Table t({"n", "N = n log n", "paper BW", "measured", "tag"});
    for (const std::uint32_t n : {8u, 16u, 32u, 64u, 256u, 1024u}) {
      const topo::CubeConnectedCycles cc(n);
      std::string measured;
      const char* tag;
      if (n <= 16) {
        cut::BranchBoundOptions opts;
        opts.initial_bound = n / 2;
        const auto r = cut::min_bisection_branch_bound(cc.graph(), opts);
        measured = std::to_string(std::min<std::size_t>(r.capacity, n / 2));
        tag = "exact (branch & bound)";
      } else if (n <= 64) {
        const auto fm = cut::min_bisection_fiduccia_mattheyses(cc.graph());
        measured =
            std::to_string(std::min<std::size_t>(fm.capacity, n / 2));
        tag = "heuristic UB (= dimension cut)";
      } else {
        const auto ml = cut::min_bisection_multilevel(cc.graph());
        measured =
            std::to_string(std::min<std::size_t>(ml.capacity, n / 2));
        tag = "multilevel UB (= dimension cut)";
      }
      t.add(std::to_string(n), std::to_string(cc.num_nodes()),
            std::to_string(n / 2), measured, tag);
    }
    std::cout << "\nBW(CCCn) = n/2:\n";
    t.print(std::cout);
  }
  return 0;
}
