// E14 — constructive Lemma 2.5 / 2.8 certificates: for a sweep of cuts
// of Bn, route the proof's port bijection through the folded Beneš and
// report the 2|Ā∩L0| edge-disjoint crossing paths certifying
// C(A, Ā) >= 2|Ā∩L0|.
#include <iostream>

#include "core/rng.hpp"
#include "cut/constructive.hpp"
#include "io/table.hpp"
#include "routing/rearrange_certificate.hpp"
#include "topology/butterfly.hpp"

int main() {
  using namespace bfly;
  std::cout << "E14 / Lemmas 2.5 & 2.8 — rearrangeability certificates\n\n";

  io::Table t({"n", "cut", "|A-bar ∩ L0|", "crossing paths", "C(A,A-bar)",
               "edge-disjoint", "bound holds"});
  Rng rng(2026);
  for (const std::uint32_t n : {8u, 16u, 32u}) {
    const topo::Butterfly bf(n);
    // The folklore column cut first.
    {
      const auto cutres = cut::column_split_bisection(bf);
      const auto cert = routing::lemma28_certificate(bf, cutres.sides);
      t.add(std::to_string(n), "column split",
            std::to_string(cert.minority_level0),
            std::to_string(cert.crossing_paths),
            std::to_string(cert.cut_capacity),
            cert.edge_disjoint ? "yes" : "NO",
            cert.cut_capacity >= cert.crossing_paths ? "yes" : "NO");
    }
    // Then random cuts.
    for (int trial = 0; trial < 3; ++trial) {
      std::vector<std::uint8_t> sides(bf.num_nodes());
      for (auto& s : sides) s = static_cast<std::uint8_t>(rng.below(2));
      const auto cert = routing::lemma28_certificate(bf, sides);
      t.add(std::to_string(n), "random #" + std::to_string(trial),
            std::to_string(cert.minority_level0),
            std::to_string(cert.crossing_paths),
            std::to_string(cert.cut_capacity),
            cert.edge_disjoint ? "yes" : "NO",
            cert.cut_capacity >= cert.crossing_paths ? "yes" : "NO");
    }
  }
  t.print(std::cout);
  std::cout << "\nEvery row certifies C(A,Ā) >= 2|Ā∩L0| — the exact "
               "mechanism of the paper's Lemma 2.8.\n";
  return 0;
}
