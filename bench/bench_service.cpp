// E24: service load generator — latency and throughput of the query
// daemon's executor, cold (empty cache, every query solves) vs warm
// (every query is an LRU hit), plus a concurrent mixed burst for
// sustained QPS. Runs the Service in-process so the numbers measure
// admission + cache + executor, not pipe plumbing.
//
// The smoke test doubles as a latency gate: the warm-cache p99 for the
// repeated BW(B8) query must come in under 1 ms (the acceptance bar for
// "cached lookups are never starved"), and every warm hit must be
// bit-identical to the cold answer — a nonzero exit otherwise.
//
// JSON rows ride the same (instance, kernel, threads) schema as
// bench_exact_kernels, so compare_bench.py gates them against
// bench/baselines/BENCH_service.json. Warm-latency rows sit far below
// the gate's 0.1 s absolute noise floor; the cold solve rows are the
// regression-bearing ones.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "service/executor.hpp"

namespace {

using namespace bfly;
using Clock = std::chrono::steady_clock;

int g_failures = 0;

struct Row {
  std::string instance;
  std::string kernel;
  unsigned threads;
  double seconds;
};
std::vector<Row> g_rows;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

service::Request bw(service::Family family, std::uint32_t n,
                    service::Policy policy = service::Policy::kExact) {
  service::Request r;
  r.kind = service::QueryKind::kBisectionWidth;
  r.family = family;
  r.n = n;
  r.policy = policy;
  return r;
}

double percentile(std::vector<double>& ms, double p) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(ms.size() - 1) + 0.5);
  return ms[std::min(idx, ms.size() - 1)];
}

void write_json(const std::string& path, bool smoke, double cold_p50,
                double cold_p99, double warm_p50, double warm_p99,
                double qps_warm, double qps_mixed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    ++g_failures;
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"service\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"cold_p50_ms\": %.3f,\n  \"cold_p99_ms\": %.3f,\n",
               cold_p50, cold_p99);
  std::fprintf(f, "  \"warm_p50_ms\": %.4f,\n  \"warm_p99_ms\": %.4f,\n",
               warm_p50, warm_p99);
  std::fprintf(f, "  \"qps_warm\": %.0f,\n  \"qps_mixed\": %.0f,\n",
               qps_warm, qps_mixed);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"instance\": \"%s\", \"kernel\": \"%s\", "
                 "\"threads\": %u, \"seconds\": %.6f}%s\n",
                 r.instance.c_str(), r.kernel.c_str(), r.threads, r.seconds,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: bench_service [--smoke] [--out=FILE]\n");
      return 2;
    }
  }

  const std::filesystem::path cache_dir =
      std::filesystem::temp_directory_path() / "bfly_bench_service_cache";
  std::filesystem::remove_all(cache_dir);

  service::ServiceOptions opts;
  opts.cache_dir = cache_dir;
  opts.workers = 2;
  opts.default_deadline_seconds = smoke ? 20.0 : 60.0;
  service::Service svc(opts);

  // ---- Cold: every instance solved once (empty cache). ----
  struct Instance {
    const char* name;
    service::Request req;
  };
  // Exact-feasible instances run the full proof; the 80-node B16 sits
  // past the exact frontier (see bench_exact_kernels), so it exercises
  // the heuristic path instead of burning its whole deadline.
  const std::vector<Instance> instances = {
      {"B8", bw(service::Family::kButterfly, 8)},
      {"W8", bw(service::Family::kWrapped, 8)},
      {"CCC8", bw(service::Family::kCcc, 8)},
      {"Q16", bw(service::Family::kHypercube, 16)},
      {"B16", bw(service::Family::kButterfly, 16,
                 service::Policy::kHeuristic)},
  };
  std::vector<double> cold_ms;
  std::vector<std::uint64_t> cold_values;
  for (const Instance& inst : instances) {
    const service::Response r = svc.query(inst.req);
    if (r.status != service::Status::kOk) {
      std::fprintf(stderr, "FAIL: cold %s returned %s (%s)\n", inst.name,
                   service::to_string(r.status), r.detail.c_str());
      ++g_failures;
      cold_values.push_back(0);
      continue;
    }
    cold_ms.push_back(r.wall_ms);
    cold_values.push_back(r.value);
    g_rows.push_back({inst.name, "service-cold", 1, r.wall_ms / 1e3});
    std::printf("cold  %-5s value=%llu exact=%d  %8.2f ms\n", inst.name,
                static_cast<unsigned long long>(r.value), r.exact ? 1 : 0,
                r.wall_ms);
  }

  // ---- Warm: repeated BW(B8), every hit from the LRU. ----
  const std::size_t warm_reps = smoke ? 500 : 5000;
  std::vector<double> warm_ms;
  warm_ms.reserve(warm_reps);
  const auto warm_t0 = Clock::now();
  for (std::size_t i = 0; i < warm_reps; ++i) {
    const service::Response r = svc.query(instances[0].req);
    if (r.status != service::Status::kOk ||
        r.source != service::Source::kMemory ||
        r.value != cold_values[0]) {
      std::fprintf(stderr,
                   "FAIL: warm rep %zu: status=%s source=%s value=%llu"
                   " (cold value %llu)\n",
                   i, service::to_string(r.status),
                   service::to_string(r.source),
                   static_cast<unsigned long long>(r.value),
                   static_cast<unsigned long long>(cold_values[0]));
      ++g_failures;
      break;
    }
    warm_ms.push_back(r.wall_ms);
  }
  const double warm_wall = seconds_since(warm_t0);
  const double qps_warm =
      warm_wall > 0.0 ? static_cast<double>(warm_reps) / warm_wall : 0.0;
  g_rows.push_back({"B8", "service-warm-burst", 1, warm_wall});

  // ---- Mixed concurrent burst: 4 client threads, warm + boundary. ----
  const std::size_t mixed_per_thread = smoke ? 200 : 2000;
  constexpr unsigned kClients = 4;
  std::atomic<std::uint64_t> mixed_ok{0};
  std::atomic<std::uint64_t> mixed_bad{0};
  const auto mixed_t0 = Clock::now();
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (unsigned c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t i = 0; i < mixed_per_thread; ++i) {
          service::Request r = c % 2 == 0
                                   ? instances[0].req
                                   : instances[(c / 2 + 1) % instances.size()]
                                         .req;
          const service::Response resp = svc.query(r);
          if (resp.status == service::Status::kOk) {
            mixed_ok.fetch_add(1);
          } else {
            mixed_bad.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  const double mixed_wall = seconds_since(mixed_t0);
  const double qps_mixed =
      mixed_wall > 0.0
          ? static_cast<double>(mixed_ok.load()) / mixed_wall
          : 0.0;
  g_rows.push_back({"mixed", "service-burst", kClients, mixed_wall});
  if (mixed_bad.load() != 0) {
    std::fprintf(stderr, "FAIL: %llu mixed-burst queries not OK\n",
                 static_cast<unsigned long long>(mixed_bad.load()));
    ++g_failures;
  }

  const double cold_p50 = percentile(cold_ms, 0.50);
  const double cold_p99 = percentile(cold_ms, 0.99);
  const double warm_p50 = percentile(warm_ms, 0.50);
  const double warm_p99 = percentile(warm_ms, 0.99);
  std::printf("cold  p50 %8.2f ms   p99 %8.2f ms\n", cold_p50, cold_p99);
  std::printf("warm  p50 %8.4f ms   p99 %8.4f ms   (%zu reps, %.0f QPS)\n",
              warm_p50, warm_p99, warm_reps, qps_warm);
  std::printf("mixed %u clients: %.0f QPS sustained\n", kClients, qps_mixed);

  // The acceptance bar: a warm BW(B8) lookup is a sub-millisecond hit
  // even at p99 — cached queries are never starved by solver work.
  if (warm_p99 >= 1.0) {
    std::fprintf(stderr, "FAIL: warm-cache p99 %.4f ms >= 1 ms\n", warm_p99);
    ++g_failures;
  }

  const service::ServiceStats stats = svc.stats();
  if (stats.quarantined != 0) {
    std::fprintf(stderr, "FAIL: %llu cache entries quarantined\n",
                 static_cast<unsigned long long>(stats.quarantined));
    ++g_failures;
  }

  if (!out_path.empty()) {
    write_json(out_path, smoke, cold_p50, cold_p99, warm_p50, warm_p99,
               qps_warm, qps_mixed);
  }
  std::filesystem::remove_all(cache_dir);
  return g_failures == 0 ? 0 : 1;
}
