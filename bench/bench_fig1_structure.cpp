// E1 — regenerates the paper's Figure 1: the 32-node butterfly B8,
// printed in ASCII with level/column structure, plus the structural
// counts Section 1.1 states, and a DOT export for graphical rendering.
#include <iostream>

#include "io/ascii_butterfly.hpp"
#include "io/dot.hpp"
#include "io/table.hpp"
#include "topology/butterfly.hpp"

int main() {
  using namespace bfly;
  const topo::Butterfly b8(8);

  std::cout << "E1 / Figure 1 — the 32-node butterfly network B8\n\n";
  std::cout << io::render_butterfly_ascii(b8) << "\n";

  io::Table t({"quantity", "paper", "measured"});
  t.add("nodes N = n(log n + 1)", "32", std::to_string(b8.num_nodes()));
  t.add("levels", "4", std::to_string(b8.num_levels()));
  t.add("columns n", "8", std::to_string(b8.n()));
  t.add("edges", "48", std::to_string(b8.graph().num_edges()));
  t.add("input/output degree", "2",
        std::to_string(b8.graph().degree(b8.node(0, 0))));
  t.add("internal degree", "4",
        std::to_string(b8.graph().degree(b8.node(0, 1))));
  t.print(std::cout);

  std::cout << "\nDOT export (render with `dot -Tpng`):\n";
  io::DotOptions opts;
  opts.graph_name = "B8";
  opts.label = [&](NodeId v) {
    return std::to_string(b8.column(v)) + "," + std::to_string(b8.level(v));
  };
  io::write_dot(std::cout, b8.graph(), opts);
  return 0;
}
