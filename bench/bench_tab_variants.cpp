// E13 — Section 1.6 / Section 1.2 side results:
//   * Snir's Ω_n port-expansion bound C log C >= 4k (exact minima table)
//   * Hong–Kung's FFT_n dominator bound k <= 2|D| log|D|
//   * the Kruskal–Snir [13] directed IO-bisection = n/2
#include <cmath>
#include <iostream>

#include "expansion/constructive_sets.hpp"
#include "io/table.hpp"
#include "variants/bandwidth.hpp"
#include "variants/fft.hpp"
#include "variants/omega.hpp"

int main() {
  using namespace bfly;
  std::cout << "E13 / Section 1.6 variants and the [13] directed "
               "bisection\n\n";

  {
    const variants::OmegaNetwork omega(8);
    const auto best = exact_port_expansion(omega);
    io::Table t({"k", "min port-EE C (exact)", "C log C", "4k",
                 "Snir holds"});
    for (std::size_t k = 1; k < best.size(); ++k) {
      const double clogc = static_cast<double>(best[k]) *
                           std::log2(static_cast<double>(best[k]));
      t.add(std::to_string(k), std::to_string(best[k]),
            io::fmt(clogc, 2), std::to_string(4 * k),
            clogc + 1e-9 >= 4.0 * static_cast<double>(k) ? "yes" : "NO");
    }
    std::cout << "Snir's Omega_8 (base B4), exact over all subsets:\n";
    t.print(std::cout);
  }

  {
    const topo::Butterfly bf(32);
    io::Table t({"set (Lemma 4.10, delta)", "k", "|D| (min dominator)",
                 "2|D|log|D|", "Hong-Kung holds"});
    for (const std::uint32_t delta : {1u, 2u, 3u, 4u}) {
      const auto set = expansion::bn_ne_set(bf, delta);
      const auto chk = variants::hong_kung_check(bf, set);
      t.add("delta=" + std::to_string(delta), std::to_string(chk.k),
            std::to_string(chk.dominator_size), io::fmt(chk.bound, 1),
            chk.holds ? "yes" : "NO");
    }
    std::cout << "\nHong-Kung FFT_32 dominator bound on output-anchored "
                 "sets:\n";
    t.print(std::cout);
  }

  {
    io::Table t({"n", "[13] value (paper)", "flow LB", "MSB cut UB",
                 "exhaustive"});
    for (const std::uint32_t n : {4u, 8u}) {
      const topo::Butterfly bf(n);
      const auto lb = variants::directed_io_bisection_flow_bound(bf);
      const auto ub = variants::directed_msb_cut(bf);
      const std::string ex =
          n <= 4
              ? std::to_string(variants::directed_io_bisection_exhaustive(bf))
              : "-";
      t.add(std::to_string(n), std::to_string(n / 2), std::to_string(lb),
            std::to_string(ub), ex);
    }
    std::cout << "\nKruskal-Snir directed IO-bisection (= n/2; bandwidth "
                 "2n <= 4 * this):\n";
    t.print(std::cout);
  }
  return 0;
}
