// E2 — regenerates the paper's Figure 2: the credit-distribution scheme
// of Lemma 4.2. A node u passes 1/2 unit of credit down its tree Tu;
// credit sticks to cut edges. We reproduce the figure's configuration —
// a path of A-nodes straight down from u whose siblings are outside A —
// and print the per-depth credits 1/4, 1/8, ..., then validate the full
// accounting on the Lemma 4.1 extremal set.
#include <cmath>
#include <iostream>

#include "expansion/constructive_sets.hpp"
#include "expansion/credit_scheme.hpp"
#include "io/table.hpp"
#include "topology/wrapped_butterfly.hpp"

int main() {
  using namespace bfly;
  const topo::WrappedButterfly wb(16);  // d = 4
  const std::uint32_t d = wb.dims();

  std::cout << "E2 / Figure 2 — credit distribution down the tree Tu\n\n";
  std::cout << "Configuration: A = column 0 of W16 (a straight path from\n"
               "u = <0,0> to a leaf of Tu); every sibling of the path is\n"
               "outside A, so each tree level retains half the remaining\n"
               "credit on its cut edge, exactly as in Figure 2.\n\n";

  // A = all levels of column 0.
  std::vector<NodeId> column0;
  for (std::uint32_t lvl = 0; lvl < d; ++lvl) {
    column0.push_back(wb.node(0, lvl));
  }
  const auto rep = expansion::credit_edge_wn(wb, column0);

  io::Table t({"tree depth", "credit on cut edge (paper)", "model"});
  // From one source's 1/2 downward: depth-1 cross edge keeps 1/4, the
  // straight edge forwards; depth-2 keeps 1/8, etc.
  double remaining = 0.25;
  for (std::uint32_t depth = 1; depth <= d; ++depth) {
    t.add(std::to_string(depth), io::fmt(remaining, 6),
          depth == d ? "leaf retains rest" : "cut edge retains");
    remaining /= 2.0;
  }
  t.print(std::cout);

  std::cout << "\nFull accounting over the set A = column 0 (k = " << d
            << " nodes):\n";
  io::Table s({"quantity", "value"});
  s.add("credit retained by cut edges", io::fmt(rep.retained_by_boundary, 6));
  s.add("credit stranded on leaf edges", io::fmt(rep.retained_elsewhere, 6));
  s.add("conservation (should equal k)",
        io::fmt(rep.retained_by_boundary + rep.retained_elsewhere, 6));
  s.add("max credit on one cut edge", io::fmt(rep.max_per_boundary_item, 6));
  s.add("Lemma 4.2 per-edge cap (floor(log k)+1)/4",
        io::fmt(rep.per_item_cap, 6));
  s.add("implied lower bound on C(A,A-bar)",
        io::fmt(rep.implied_lower_bound, 4));
  s.add("actual C(A,A-bar)", std::to_string(rep.actual_boundary));
  s.print(std::cout);

  std::cout << "\nLemma 4.1 extremal set (sub-butterfly, delta = 2):\n";
  const auto set = expansion::wn_ee_set(wb, 2);
  const auto rep2 = expansion::credit_edge_wn(wb, set);
  io::Table u({"quantity", "value"});
  u.add("k", std::to_string(set.size()));
  u.add("actual C(A,A-bar)", std::to_string(rep2.actual_boundary));
  u.add("credit-implied lower bound", io::fmt(rep2.implied_lower_bound, 4));
  u.add("(4-o(1)) k/log k reference",
        io::fmt(4.0 * set.size() / std::log2(double(set.size())), 4));
  u.print(std::cout);
  return 0;
}
