// E22 — flow-certified expansion: the certification subsystem scored
// against the exhaustive sweeps on paper topologies, superconcentration
// query families on concatenated butterfly pairs, B1024-scale witness
// certification (queue vs packed level phase), and the heuristic
// portfolio (FM / multilevel / spectral / vertex) on the random
// d-regular corpus, every witness checked against its flow bound.
//
// Emits BENCH_cert.json (--out=<path>) with rows
//   {instance, kernel, threads, seconds, visited_nodes, capacity}
// where `capacity` is the certified value of the row (flow, width or
// cut) and `visited_nodes` counts certificates or flow queries for
// deterministic rows, 0 for wall-clock-only rows. Exits nonzero when
// any certificate rejects a witness the solvers claim — CI runs
// `bench_cert --smoke` behind the compare_bench.py gate. The smoke
// corpus includes one 10^5-node random 4-regular instance, so heuristic
// cuts at that scale ship with certified (not sampled) values.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cert/expansion_certificate.hpp"
#include "cert/superconcentration.hpp"
#include "cut/constructive.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "cut/multilevel.hpp"
#include "cut/spectral_bisection.hpp"
#include "cut/vertex_bisection.hpp"
#include "expansion/expansion.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/random_regular.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace {

using namespace bfly;

struct Row {
  std::string instance;
  std::string kernel;
  unsigned threads = 1;
  double seconds = 0.0;
  std::uint64_t visited_nodes = 0;
  std::size_t capacity = 0;
};

std::vector<Row> g_rows;
int g_failures = 0;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void push_row(const std::string& instance, const char* kernel, double secs,
              std::uint64_t visited, std::size_t capacity) {
  g_rows.push_back({instance, kernel, 1, secs, visited, capacity});
  std::printf("%-12s %-18s threads=1  %10.4fs  visited=%llu  capacity=%zu\n",
              instance.c_str(), kernel, secs,
              static_cast<unsigned long long>(visited), capacity);
}

// Certify every witness the exhaustive sweep emits; `visited_nodes`
// counts the certificates checked (deterministic), `capacity` the
// midpoint EE.
void differential_case(const std::string& instance, const Graph& g) {
  const auto table = expansion::exact_expansion(g);
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t checked = 0;
  for (std::size_t k = 1; k + 1 < table.size(); ++k) {
    const auto& entry = table[k];
    const auto ee = cert::certify_edge_boundary(
        g, entry.ee_witness, static_cast<std::int64_t>(entry.ee));
    const auto ne = cert::certify_node_boundary(
        g, entry.ne_witness, static_cast<std::int64_t>(entry.ne));
    checked += 2;
    if (!ee.certified || !ne.certified) {
      std::fprintf(stderr,
                   "MISMATCH %s: exact witness rejected at k=%zu "
                   "(ee flow %lld vs %zu, ne recount %lld vs %zu)\n",
                   instance.c_str(), k, static_cast<long long>(ee.flow),
                   entry.ee, static_cast<long long>(ne.recounted), entry.ne);
      ++g_failures;
    }
  }
  push_row(instance, "cert-differential", seconds_since(t0), checked,
           table[g.num_nodes() / 2].ee);
}

void superconc_case(std::uint32_t n, const cert::SuperconcOptions& opts,
                    bool expect_exhaustive) {
  const cert::ConcatenatedButterflyPair pair =
      cert::concatenated_butterfly_pair(n);
  const auto t0 = std::chrono::steady_clock::now();
  const auto c = cert::certify_superconcentration(pair.graph, pair.inputs,
                                                  pair.outputs, opts);
  const double secs = seconds_since(t0);
  const std::string instance = "Pair" + std::to_string(n);
  if (!c.certified || c.exhaustive != expect_exhaustive) {
    std::fprintf(stderr, "MISMATCH %s: %llu of %llu queries failed\n",
                 instance.c_str(),
                 static_cast<unsigned long long>(c.failures),
                 static_cast<unsigned long long>(c.queries));
    ++g_failures;
  }
  push_row(instance, c.exhaustive ? "superconc-exhaust" : "superconc-sampled",
           secs, c.queries, n);
}

// B1024-scale witness certification: the constructive column split has
// capacity exactly n; certify it with the queue level phase and again
// with the packed bitset phase. Wall-clock rows (visited 0) — this is
// the pair the packed phase exists for.
void butterfly_scale_case(std::uint32_t cols) {
  const topo::Butterfly bf(cols);
  const cut::CutResult split = cut::column_split_bisection(bf);
  std::vector<NodeId> side0;
  for (NodeId v = 0; v < bf.graph().num_nodes(); ++v) {
    if (split.sides[v] == 0) side0.push_back(v);
  }
  const std::string instance = "B" + std::to_string(cols);
  cert::CertOptions queue_opts;
  queue_opts.packed_bfs_node_limit = 0;
  const auto t0 = std::chrono::steady_clock::now();
  const auto plain = cert::certify_edge_boundary(
      bf.graph(), side0, static_cast<std::int64_t>(split.capacity),
      queue_opts);
  push_row(instance, "cert-ee-csr", seconds_since(t0), 0,
           static_cast<std::size_t>(plain.flow));
  cert::CertOptions packed_opts;
  packed_opts.packed_bfs_node_limit = bf.graph().num_nodes() + 2;
  const auto t1 = std::chrono::steady_clock::now();
  const auto packed = cert::certify_edge_boundary(
      bf.graph(), side0, static_cast<std::int64_t>(split.capacity),
      packed_opts);
  push_row(instance, "cert-ee-packed", seconds_since(t1), 0,
           static_cast<std::size_t>(packed.flow));
  if (!plain.certified || !packed.certified || plain.flow != packed.flow) {
    std::fprintf(stderr,
                 "MISMATCH %s: column split capacity %zu, csr flow %lld, "
                 "packed flow %lld\n",
                 instance.c_str(), split.capacity,
                 static_cast<long long>(plain.flow),
                 static_cast<long long>(packed.flow));
    ++g_failures;
  }
}

// One heuristic witness on a corpus instance: report the heuristic cut,
// then its certified recount (flow == cut or the witness is rejected).
void scored_witness(const std::string& instance, const Graph& g,
                    const char* solver, const cut::CutResult& cut,
                    double solver_secs) {
  std::vector<NodeId> side0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (cut.sides[v] == 0) side0.push_back(v);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto cert = cert::certify_edge_boundary(
      g, side0, static_cast<std::int64_t>(cut.capacity));
  const double secs = seconds_since(t0);
  if (!cert.certified) {
    std::fprintf(stderr, "MISMATCH %s/%s: claimed cut %zu, flow %lld\n",
                 instance.c_str(), solver, cut.capacity,
                 static_cast<long long>(cert.flow));
    ++g_failures;
  }
  push_row(instance, solver, solver_secs, 0, cut.capacity);
  push_row(instance, (std::string("cert-") + solver).c_str(), secs, 0,
           static_cast<std::size_t>(cert.flow));
}

// The full heuristic portfolio on a mid-sized corpus instance, plus
// class-wide certified bounds and the vertex-bisection objective.
void corpus_case(const std::string& instance, const Graph& g,
                 std::uint64_t seed) {
  {
    cut::FiducciaMattheysesOptions fm;
    fm.seed = seed;
    fm.restarts = 4;
    const auto t0 = std::chrono::steady_clock::now();
    const auto cut = cut::min_bisection_fiduccia_mattheyses(g, fm);
    scored_witness(instance, g, "fm", cut, seconds_since(t0));
  }
  {
    cut::MultilevelOptions ml;
    ml.seed = seed;
    const auto t0 = std::chrono::steady_clock::now();
    const auto cut = cut::min_bisection_multilevel(g, ml);
    scored_witness(instance, g, "multilevel", cut, seconds_since(t0));
  }
  {
    cut::SpectralBisectionOptions sp;
    sp.seed = seed;
    const auto t0 = std::chrono::steady_clock::now();
    const auto cut = cut::min_bisection_spectral(g, sp);
    scored_witness(instance, g, "spectral", cut, seconds_since(t0));
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    const cert::ExpansionClassBound bound = cert::expansion_class_bounds(g);
    push_row(instance, "cert-lambda", seconds_since(t0), 0,
             static_cast<std::size_t>(bound.lambda));
    if (bound.lambda < 0 || bound.kappa < 0 || bound.kappa > bound.lambda) {
      // kappa <= lambda <= min degree always (Whitney).
      std::fprintf(stderr, "MISMATCH %s: kappa %lld > lambda %lld\n",
                   instance.c_str(), static_cast<long long>(bound.kappa),
                   static_cast<long long>(bound.lambda));
      ++g_failures;
    }
  }
  {
    cut::PortfolioOptions po;
    po.master_seed = seed;
    po.num_threads = 1;
    po.run_branch_bound = false;
    // Trim the quadratic portfolio legs to corpus scale (KL passes are
    // O(n^2); at default effort they dominate the whole bench run) and
    // keep the row's wall clock small enough that the >25% bench gate
    // measures regressions, not CI hardware variance.
    po.kl.restarts = 1;
    po.kl.max_passes = 1;
    po.sa.restarts = 1;
    po.sa.steps_per_temperature = 2000;
    po.fm.restarts = 4;
    const auto t0 = std::chrono::steady_clock::now();
    const auto vb = cut::vertex_bisection_portfolio(g, po);
    const double secs = seconds_since(t0);
    cut::validate_vertex_bisection(g, vb);
    push_row(instance, "vertex-portfolio", secs, 0, vb.width);
    push_row(instance, "cert-vertex", 0.0, 0,
             static_cast<std::size_t>(vb.certified_lower));
  }
}

// The >= 10^5-node acceptance row: one FM witness on a 100k-node random
// 4-regular instance, flow-certified within the smoke budget.
void corpus_scale_case(const std::string& instance, NodeId n,
                       std::uint32_t degree, std::uint64_t seed) {
  const Graph g = topo::random_regular(n, degree, seed);
  cut::FiducciaMattheysesOptions fm;
  fm.seed = seed;
  fm.restarts = 1;
  const auto t0 = std::chrono::steady_clock::now();
  const auto cut = cut::min_bisection_fiduccia_mattheyses(g, fm);
  scored_witness(instance, g, "fm", cut, seconds_since(t0));
}

void write_json(const std::string& path, bool smoke) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    ++g_failures;
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"cert\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"mismatches\": %d,\n", g_failures);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"instance\": \"%s\", \"kernel\": \"%s\", "
                 "\"threads\": %u, \"seconds\": %.6f, "
                 "\"visited_nodes\": %llu, \"capacity\": %zu}%s\n",
                 r.instance.c_str(), r.kernel.c_str(), r.threads, r.seconds,
                 static_cast<unsigned long long>(r.visited_nodes), r.capacity,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), g_rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_cert.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=<path>]\n", argv[0]);
      return 2;
    }
  }
  std::printf("flow-certification bench (%s mode)\n",
              smoke ? "smoke" : "full");

  // --- exhaustive-sweep differentials on paper topologies ---
  differential_case("B4", topo::Butterfly(4).graph());
  if (!smoke) {
    differential_case("W8", topo::WrappedButterfly(8).graph());
    differential_case("CCC8", topo::CubeConnectedCycles(8).graph());
  }

  // --- superconcentration query families ---
  {
    cert::SuperconcOptions sc;
    superconc_case(8, sc, /*expect_exhaustive=*/true);
    if (!smoke) {
      sc.samples = 256;
      sc.seed = 17;
      superconc_case(16, sc, /*expect_exhaustive=*/false);
    }
  }

  // --- B1024-scale certification, queue vs packed level phase ---
  butterfly_scale_case(smoke ? 256 : 1024);
  if (smoke) butterfly_scale_case(1024);

  // --- random d-regular corpus (arXiv 2211.03206 family) ---
  corpus_case("rr2k-d4", topo::random_regular(2000, 4, 1), 1);
  if (!smoke) corpus_case("rr10k-d4", topo::random_regular(10000, 4, 2), 2);
  corpus_scale_case("rr100k-d4", 100000, 4, 3);

  write_json(out, smoke);
  if (g_failures != 0) {
    std::fprintf(stderr, "%d certification failures\n", g_failures);
    return 1;
  }
  return 0;
}
