// E25 — the phase-driven routing simulator under the bisection bound
// (DESIGN.md §15, EXPERIMENTS.md E25).
//
// Rows run the SoA engine over the E25 traffic scenarios (uniform,
// bit-reversal, hotspot, cut-saturating, virtual-channel configs) on
// B64..B1024 and report throughput (packets·hops per second of run()
// wall time) plus the slowdown makespan / (P / (4·BW)) against the
// repo's own constructive BW values, with the witness-cut crossings and
// the certified per-instance lower bound alongside.
//
// Emits BENCH_routing_sim.json (--out=<path>) with rows
//   {instance, traffic, threads, packets, total_hops, seconds,
//    phops_per_s, min_phops_per_s, makespan, max_queue, max_link_load,
//    bw, c14_bound, cut_bound, lower_bound, slowdown}
// keyed by (instance, traffic, threads). Makespan is a pure function of
// the row's spec — the engine is deterministic for ANY thread count —
// so compare_bench.py gates it like a visited-node count (any drift
// fails). Correctness gates run in every build:
//
//   * makespan >= the certified lower bound (directional cut bound,
//     longest route, static congestion) — a violation is an engine bug;
//   * makespan >= C14's P/(4·BW) on every row;
//   * the cut-saturating row lands within 2x of its certified bound.
//
// Performance gates run only in non-checked, non-sanitized builds
// ("gated": true in the JSON): the serial B1024 uniform rows must
// sustain >= 1M packets·hops/s (floor carried per-row, re-checked by
// compare_bench.py), and on machines with >= 4 hardware threads the
// 4-thread stepper must beat serial by >= 1.5x on the B1024 row.
// Exits nonzero on any gate failure — CI runs `--smoke` behind the
// compare_bench.py baseline gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "cut/constructive.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "routing/sim_engine.hpp"
#include "routing/traffic.hpp"
#include "topology/butterfly.hpp"

namespace {

using namespace bfly;

constexpr double kSerialPhopsFloor = 1.0e6;  // B1024 serial acceptance
constexpr double kSpeedupFloor = 1.5;        // 4-thread over serial
constexpr double kCutsatSlack = 2.0;         // vs the certified bound

struct Row {
  std::string instance;
  std::string traffic;
  unsigned threads = 1;
  std::size_t packets = 0;
  std::uint64_t total_hops = 0;
  double seconds = 0.0;
  double phops_per_s = 0.0;
  double min_phops_per_s = 0.0;
  std::uint32_t makespan = 0;
  std::size_t max_queue = 0;
  std::size_t max_link_load = 0;
  std::size_t bw = 0;
  double c14_bound = 0.0;
  double cut_bound = 0.0;
  double lower_bound = 0.0;
  double slowdown = 0.0;
};

std::vector<Row> g_rows;
int g_failures = 0;

// Perf gates only where the binary is actually optimized and
// uninstrumented; the correctness gates stay on everywhere.
bool perf_gated() { return !checked_build() && !sanitized_build(); }

// "B" + std::to_string(n) via append — GCC 12's -Wrestrict misfires on
// the insert-based operator+(const char*, string&&) under -O2.
std::string tag(const char* prefix, std::uint32_t n) {
  std::string s(prefix);
  s += std::to_string(n);
  return s;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct CaseConfig {
  unsigned threads = 1;
  std::uint32_t vcs = 1;
  std::uint32_t capacity = 0;
  double min_phops = 0.0;  // 0 = no throughput floor on this row
  int reps = 1;            // best-of-N run() wall time
};

// Runs one row: generate traffic, load, time run(), check the
// correctness gates, record the row. Returns the row for follow-up
// gates (speedup pairs, cutsat slack).
const Row& run_case(const topo::Butterfly& bf, const std::string& instance,
                    const std::string& spec_text,
                    const std::vector<std::uint8_t>& witness_sides,
                    std::size_t bw, const CaseConfig& cfg) {
  const auto spec = routing::parse_traffic_spec(spec_text);
  const auto traffic = routing::make_traffic(bf, spec, &witness_sides);

  routing::SimOptions opts;
  opts.num_threads = cfg.threads;
  opts.vcs_per_link = cfg.vcs;
  opts.vc_capacity = cfg.capacity;
  routing::SimEngine eng(bf.graph(), opts);

  routing::EngineStats st;
  double best = 0.0;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    if (cfg.vcs > 1) {
      eng.load(traffic.paths,
               routing::stage_weighted_vcs(bf, traffic.paths, cfg.vcs));
    } else {
      eng.load(traffic.paths);
    }
    const auto t0 = std::chrono::steady_clock::now();
    st = eng.run();
    const double secs = seconds_since(t0);
    if (rep == 0 || secs < best) best = secs;
  }
  const auto bound = routing::traffic_bound(traffic, bw, st.max_link_load);

  Row r;
  r.instance = instance;
  r.traffic = spec_text;
  r.threads = cfg.threads;
  r.packets = st.num_packets;
  r.total_hops = st.total_hops;
  r.seconds = best;
  r.phops_per_s =
      best > 0.0 ? static_cast<double>(st.total_hops) / best : 0.0;
  r.min_phops_per_s = cfg.min_phops;
  r.makespan = st.makespan;
  r.max_queue = st.max_queue;
  r.max_link_load = st.max_link_load;
  r.bw = bw;
  r.c14_bound = bound.c14_bound;
  r.cut_bound = bound.cut_bound;
  r.lower_bound = bound.lower_bound;
  r.slowdown = bound.c14_bound > 0.0 ? r.makespan / bound.c14_bound : 0.0;

  // Correctness gates (every build type).
  if (st.delivered != st.num_packets) {
    std::fprintf(stderr, "GATE %s/%s: delivered %zu of %zu packets\n",
                 instance.c_str(), spec_text.c_str(), st.delivered,
                 st.num_packets);
    ++g_failures;
  }
  if (static_cast<double>(r.makespan) < bound.lower_bound) {
    std::fprintf(stderr,
                 "GATE %s/%s: makespan %u below the certified lower bound "
                 "%.2f — engine bug\n",
                 instance.c_str(), spec_text.c_str(), r.makespan,
                 bound.lower_bound);
    ++g_failures;
  }
  if (static_cast<double>(r.makespan) < bound.c14_bound) {
    std::fprintf(stderr, "GATE %s/%s: makespan %u below C14's P/(4 BW) = %.2f\n",
                 instance.c_str(), spec_text.c_str(), r.makespan,
                 bound.c14_bound);
    ++g_failures;
  }
  // Throughput floor (optimized builds only).
  if (perf_gated() && cfg.min_phops > 0.0 && r.phops_per_s < cfg.min_phops) {
    std::fprintf(stderr,
                 "GATE %s/%s t=%u: %.2fM packets·hops/s below the %.2fM "
                 "floor\n",
                 instance.c_str(), spec_text.c_str(), cfg.threads,
                 r.phops_per_s / 1e6, cfg.min_phops / 1e6);
    ++g_failures;
  }

  std::printf(
      "%-12s %-24s t=%u  %8.4fs  %7.2fM ph/s  makespan=%-5u bound=%-7.1f "
      "slowdown=%.2fx\n",
      instance.c_str(), spec_text.c_str(), cfg.threads, r.seconds,
      r.phops_per_s / 1e6, r.makespan, r.lower_bound, r.slowdown);
  g_rows.push_back(r);
  return g_rows.back();
}

void write_json(const std::string& path, bool smoke) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    ++g_failures;
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"routing_sim\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"gated\": %s,\n", perf_gated() ? "true" : "false");
  std::fprintf(f, "  \"failures\": %d,\n", g_failures);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(
        f,
        "    {\"instance\": \"%s\", \"traffic\": \"%s\", \"threads\": %u, "
        "\"packets\": %zu, \"total_hops\": %llu, \"seconds\": %.6f, "
        "\"phops_per_s\": %.1f, \"min_phops_per_s\": %.1f, "
        "\"makespan\": %u, \"max_queue\": %zu, \"max_link_load\": %zu, "
        "\"bw\": %zu, \"c14_bound\": %.3f, \"cut_bound\": %.3f, "
        "\"lower_bound\": %.3f, \"slowdown\": %.3f}%s\n",
        r.instance.c_str(), r.traffic.c_str(), r.threads, r.packets,
        static_cast<unsigned long long>(r.total_hops), r.seconds,
        r.phops_per_s, r.min_phops_per_s, r.makespan, r.max_queue,
        r.max_link_load, r.bw, r.c14_bound, r.cut_bound, r.lower_bound,
        r.slowdown, i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), g_rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_routing_sim.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=<path>]\n", argv[0]);
      return 2;
    }
  }
  // Instrumented / unoptimized runs keep the deterministic rows (their
  // makespans are build-type independent) but shrink the heavy B1024
  // work: a 10x-slower build re-running the biggest rows only burns CI
  // minutes without touching new code paths.
  const bool lean = !perf_gated();
  std::printf("routing-sim bench (%s mode, perf gates %s)\n",
              smoke ? "smoke" : "full", perf_gated() ? "on" : "off");

  // --- slowdown-vs-BW ladder: uniform traffic, constructive cuts ---
  for (const std::uint32_t n :
       {64u, 128u, 256u, 512u, 1024u}) {
    if (lean && (n == 512u || n == 1024u)) continue;
    if (smoke && n == 512u) continue;
    const topo::Butterfly bf(n);
    const auto cutres = cut::column_split_bisection(bf);
    CaseConfig cfg;
    run_case(bf, tag("B", n), "uniform:ppn=16:seed=42",
             cutres.sides, cutres.capacity, cfg);
  }

  // --- B1024 throughput rows (the acceptance floor) ---
  {
    const topo::Butterfly bf(1024);
    const auto cutres = cut::column_split_bisection(bf);
    {
      CaseConfig cfg;
      cfg.min_phops = kSerialPhopsFloor;
      cfg.reps = 2;
      // ppn=4 keeps this row under tsan/Debug budgets too.
      run_case(bf, "B1024", "uniform:ppn=4:seed=42", cutres.sides,
               cutres.capacity, cfg);
    }
    if (!lean) {
      CaseConfig serial_cfg;
      serial_cfg.min_phops = kSerialPhopsFloor;
      serial_cfg.reps = 3;
      const Row serial = run_case(bf, "B1024", "uniform:ppn=16:seed=42",
                                  cutres.sides, cutres.capacity, serial_cfg);
      if (std::thread::hardware_concurrency() >= 4) {
        CaseConfig par_cfg;
        par_cfg.threads = 4;
        par_cfg.reps = 3;
        const Row par = run_case(bf, "B1024", "uniform:ppn=16:seed=42",
                                 cutres.sides, cutres.capacity, par_cfg);
        if (par.makespan != serial.makespan ||
            par.max_queue != serial.max_queue) {
          std::fprintf(stderr,
                       "GATE B1024 t=4: parallel stats differ from serial "
                       "(makespan %u vs %u) — determinism bug\n",
                       par.makespan, serial.makespan);
          ++g_failures;
        }
        const double speedup =
            par.seconds > 0.0 ? serial.seconds / par.seconds : 0.0;
        std::printf("B1024 4-thread speedup: %.2fx (floor %.2fx)\n", speedup,
                    kSpeedupFloor);
        if (perf_gated() && speedup < kSpeedupFloor) {
          std::fprintf(stderr,
                       "GATE B1024 t=4: speedup %.2fx below the %.2fx "
                       "floor\n",
                       speedup, kSpeedupFloor);
          ++g_failures;
        }
      } else {
        std::printf(
            "B1024 4-thread speedup: skipped (%u hardware threads)\n",
            std::thread::hardware_concurrency());
      }
    }
  }

  // --- adversarial cut-saturating traffic on B64 ---
  {
    const topo::Butterfly bf(64);
    const auto cutres = cut::column_split_bisection(bf);
    CaseConfig cfg;
    const Row& r = run_case(bf, "B64", "cutsat:ppn=32:seed=7", cutres.sides,
                            cutres.capacity, cfg);
    // The acceptance gate: within 2x of the certified bound. (Against
    // the directional cut bound alone the oblivious routes sit at ~2.3x
    // — every A->B packet from a column funnels through one cut edge,
    // so congestion, not raw cut bandwidth, is the binding certificate;
    // both figures ship in the row.)
    if (static_cast<double>(r.makespan) > kCutsatSlack * r.lower_bound) {
      std::fprintf(stderr,
                   "GATE B64 cutsat: makespan %u exceeds %.1fx the certified "
                   "bound %.2f\n",
                   r.makespan, kCutsatSlack, r.lower_bound);
      ++g_failures;
    }
    // A witness straight from a solver instead of the constructive cut:
    // same plumbing, FM's bisection shape decides the crossings.
    cut::FiducciaMattheysesOptions fm;
    fm.seed = 1;
    fm.restarts = 2;
    const auto fmcut = cut::min_bisection_fiduccia_mattheyses(bf.graph(), fm);
    run_case(bf, "B64+fmcut", "cutsat:ppn=16:seed=7", fmcut.sides,
             fmcut.capacity, cfg);
  }

  // --- permutation, hotspot, and virtual-channel scenarios ---
  {
    const topo::Butterfly bf(256);
    const auto cutres = cut::column_split_bisection(bf);
    CaseConfig cfg;
    run_case(bf, "B256", "bitrev:ppn=8", cutres.sides, cutres.capacity, cfg);
  }
  {
    const topo::Butterfly bf(64);
    const auto cutres = cut::column_split_bisection(bf);
    CaseConfig cfg;
    run_case(bf, "B64", "hotspot:ppn=8:seed=11:hot=30", cutres.sides,
             cutres.capacity, cfg);
    // Bounded virtual channels: three stage-weighted channels with
    // per-queue capacity 4 — deadlock-free by construction, and the
    // backpressure cost is visible next to the unbounded row above.
    CaseConfig vc_cfg;
    vc_cfg.vcs = 3;
    vc_cfg.capacity = 4;
    run_case(bf, "B64+vc3cap4", "uniform:ppn=16:seed=42", cutres.sides,
             cutres.capacity, vc_cfg);
  }

  write_json(out, smoke);
  if (g_failures != 0) {
    std::fprintf(stderr, "%d routing-sim gate failures\n", g_failures);
    return 1;
  }
  return 0;
}
