// E12 — Lemma 2.16 construction ablation.
//
// Part 1 (analytic, exact for every j): the paper's upper-bound
// coefficient 2 BW(MOS_{j,j}, M2)/j^2 + 4/j, the smallest log n the
// lemma admits for that j, and where the coefficient first beats the
// folklore 1.0 — the headline's crossover is at j = 32, i.e.
// n >= 2^32831, which is why no computer ever sees a sub-n bisection.
//
// Part 2 (constructed, materializable n): run the actual pipeline
// (MOS cut -> Lemma 2.11 lift -> Lemma 2.15 amenable rebalance ->
// cleanup) and compare with the folklore cut.
#include <cmath>
#include <iostream>

#include "cut/constructive.hpp"
#include "cut/mos_theory.hpp"
#include "io/table.hpp"
#include "topology/butterfly.hpp"

int main() {
  using namespace bfly;
  std::cout << "E12 / Lemma 2.16 — constructive-bisection ablation\n\n";

  {
    io::Table t({"j", "BW(MOS)/j^2", "bound coeff 2BW/j^2+4/j",
                 "beats folklore?", "needs log n >="});
    for (std::uint32_t j = 2; j <= 4096; j *= 2) {
      const auto v = cut::mos_m2_bisection_value(j);
      const double c = cut::lemma216_upper_bound_coefficient(j);
      t.add(std::to_string(j), io::fmt(v.normalized, 6), io::fmt(c, 6),
            c < 1.0 ? "yes" : "no",
            std::to_string(cut::lemma216_min_log_n(j)));
    }
    std::cout << "Part 1 — analytic bound curve (exact via Lemma 2.17):\n";
    t.print(std::cout);
    // First admissible-and-winning j.
    for (std::uint32_t j = 2;; j += 2) {
      if (cut::lemma216_upper_bound_coefficient(j) < 1.0) {
        std::cout << "\nfirst j with coefficient < 1: j = " << j
                  << "  -> requires n >= 2^"
                  << cut::lemma216_min_log_n(j) << "\n";
        break;
      }
    }
    const double limit = 2.0 * (std::sqrt(2.0) - 1.0);
    std::cout << "asymptotic coefficient (Theorem 2.20): "
              << io::fmt(limit, 6) << "\n\n";
  }

  {
    io::Table t({"n", "j", "lifted-cut capacity", "folklore n",
                 "promised 2nBW/j^2+4n/j", "cleanup moves",
                 "size req met"});
    struct Case {
      std::uint32_t n, j;
    };
    for (const Case cs :
         {Case{16, 2}, Case{64, 2}, Case{64, 4}, Case{256, 2},
          Case{256, 4}, Case{1024, 4}}) {
      const topo::Butterfly bf(cs.n);
      const auto r = cut::lemma216_bisection(bf, cs.j);
      t.add(std::to_string(cs.n), std::to_string(cs.j),
            std::to_string(r.cut.capacity), std::to_string(cs.n),
            io::fmt(r.promised_capacity, 1),
            std::to_string(r.cleanup_moves),
            r.size_requirement_met ? "yes" : "no");
    }
    std::cout << "Part 2 — the pipeline on materializable Bn:\n";
    t.print(std::cout);
    std::cout
        << "\nReading: at reachable sizes the lifted cut stays above the\n"
           "folklore n (as the size requirement predicts); the analytic\n"
           "curve of Part 1 is the honest form of the asymptotic claim.\n";
  }
  return 0;
}
