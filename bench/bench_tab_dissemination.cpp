// E15 — Section 1.3 motivation: information dissemination speed tracks
// the node-expansion function (each step adds exactly |N(S)| informed
// nodes), and local load balancing converges on expanding networks.
#include <cmath>
#include <iostream>

#include "io/table.hpp"
#include "routing/dissemination.hpp"
#include "topology/butterfly.hpp"
#include "topology/wrapped_butterfly.hpp"

int main() {
  using namespace bfly;
  std::cout << "E15 / Section 1.3 — dissemination and load balancing\n\n";

  {
    io::Table t({"net", "N", "seed", "rounds to full coverage",
                 "log2(N) reference"});
    for (const std::uint32_t n : {16u, 64u, 256u}) {
      const topo::Butterfly bf(n);
      const std::vector<NodeId> seed = {bf.node(0, 0)};
      const auto trace = routing::disseminate(bf.graph(), seed);
      t.add("B" + std::to_string(n), std::to_string(bf.num_nodes()),
            "input <0,0>", std::to_string(trace.rounds),
            io::fmt(std::log2(static_cast<double>(bf.num_nodes())), 1));
      const topo::WrappedButterfly wb(n);
      const std::vector<NodeId> wseed = {wb.node(0, 0)};
      const auto wtrace = routing::disseminate(wb.graph(), wseed);
      t.add("W" + std::to_string(n), std::to_string(wb.num_nodes()),
            "node <0,0>", std::to_string(wtrace.rounds),
            io::fmt(std::log2(static_cast<double>(wb.num_nodes())), 1));
    }
    std::cout << "One-seed dissemination (per-step growth = |N(S)|, the\n"
                 "node expansion of the informed set):\n";
    t.print(std::cout);
  }

  {
    io::Table t({"net", "tokens", "rounds to fixed point",
                 "final imbalance", "diameter bound"});
    for (const std::uint32_t n : {16u, 64u}) {
      const topo::WrappedButterfly wb(n);
      std::vector<std::uint64_t> load(wb.num_nodes(), 0);
      load[0] = 10 * wb.num_nodes();
      const auto trace = routing::balance_tokens(wb.graph(), load);
      t.add("W" + std::to_string(n),
            std::to_string(10 * wb.num_nodes()),
            trace.fixed_point ? std::to_string(trace.rounds) : "cap hit",
            std::to_string(trace.imbalance.back()),
            std::to_string(3 * wb.dims() / 2));
    }
    std::cout << "\nLocal token balancing (edge-wise unit diffusion; a\n"
                 "fixed point has per-edge gradient <= 1, so the global\n"
                 "discrepancy is at most the diameter):\n";
    t.print(std::cout);
  }
  return 0;
}
