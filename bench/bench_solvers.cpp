// E11 — solver performance (google-benchmark): the exact engines,
// the heuristics, the analytic MOS optimum, and Beneš routing.
#include <benchmark/benchmark.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "cut/branch_bound.hpp"
#include "cut/brute_force.hpp"
#include "cut/constructive.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "cut/kernighan_lin.hpp"
#include "cut/mos_theory.hpp"
#include "cut/multilevel.hpp"
#include "cut/portfolio.hpp"
#include "cut/simulated_annealing.hpp"
#include "cut/spectral_bisection.hpp"
#include "expansion/expansion.hpp"
#include "robust/supervisor.hpp"
#include "routing/benes_route.hpp"
#include "topology/benes.hpp"
#include "topology/butterfly.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace {

using namespace bfly;

void BM_ExhaustiveBisection_B4(benchmark::State& state) {
  const topo::Butterfly bf(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cut::min_bisection_exhaustive(bf.graph()));
  }
}
BENCHMARK(BM_ExhaustiveBisection_B4);

void BM_BranchBoundBisection_B8(benchmark::State& state) {
  const topo::Butterfly bf(8);
  for (auto _ : state) {
    cut::BranchBoundOptions opts;
    opts.initial_bound = 8;
    benchmark::DoNotOptimize(
        cut::min_bisection_branch_bound(bf.graph(), opts));
  }
}
BENCHMARK(BM_BranchBoundBisection_B8);

void BM_KernighanLin(benchmark::State& state) {
  const topo::Butterfly bf(static_cast<std::uint32_t>(state.range(0)));
  cut::KernighanLinOptions opts;
  opts.restarts = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cut::min_bisection_kernighan_lin(bf.graph(), opts));
  }
}
BENCHMARK(BM_KernighanLin)->Arg(8)->Arg(16);

void BM_FiducciaMattheyses(benchmark::State& state) {
  const topo::Butterfly bf(static_cast<std::uint32_t>(state.range(0)));
  cut::FiducciaMattheysesOptions opts;
  opts.restarts = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cut::min_bisection_fiduccia_mattheyses(bf.graph(), opts));
  }
}
BENCHMARK(BM_FiducciaMattheyses)->Arg(16)->Arg(64)->Arg(256);

void BM_SimulatedAnnealing_B16(benchmark::State& state) {
  const topo::Butterfly bf(16);
  cut::SimulatedAnnealingOptions opts;
  opts.restarts = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cut::min_bisection_simulated_annealing(bf.graph(), opts));
  }
}
BENCHMARK(BM_SimulatedAnnealing_B16);

void BM_Multilevel(benchmark::State& state) {
  const topo::Butterfly bf(static_cast<std::uint32_t>(state.range(0)));
  cut::MultilevelOptions opts;
  opts.cycles = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cut::min_bisection_multilevel(bf.graph(), opts));
  }
}
BENCHMARK(BM_Multilevel)->Arg(64)->Arg(256)->Arg(1024);

void BM_SpectralBisection(benchmark::State& state) {
  const topo::Butterfly bf(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cut::min_bisection_spectral(bf.graph()));
  }
}
BENCHMARK(BM_SpectralBisection)->Arg(64)->Arg(256);

// The old workflow: every heuristic solver run one after another on the
// same seeds the portfolio derives. Baseline for BM_Portfolio.
void BM_SerialSolverSweep(benchmark::State& state) {
  const topo::Butterfly bf(static_cast<std::uint32_t>(state.range(0)));
  const Graph& g = bf.graph();
  const auto seeds = cut::derive_portfolio_seeds(0xbe7cull);
  for (auto _ : state) {
    cut::SpectralBisectionOptions sp;
    sp.seed = seeds.spectral;
    benchmark::DoNotOptimize(cut::min_bisection_spectral(g, sp));
    cut::MultilevelOptions ml;
    ml.seed = seeds.multilevel;
    benchmark::DoNotOptimize(cut::min_bisection_multilevel(g, ml));
    cut::FiducciaMattheysesOptions fm;
    fm.seed = seeds.fm;
    benchmark::DoNotOptimize(cut::min_bisection_fiduccia_mattheyses(g, fm));
    cut::KernighanLinOptions kl;
    kl.seed = seeds.kl;
    benchmark::DoNotOptimize(cut::min_bisection_kernighan_lin(g, kl));
    cut::SimulatedAnnealingOptions sa;
    sa.seed = seeds.sa;
    benchmark::DoNotOptimize(cut::min_bisection_simulated_annealing(g, sa));
  }
}
BENCHMARK(BM_SerialSolverSweep)->Arg(16)->Arg(64);

// The same solvers raced by the portfolio at 4 threads with a shared
// incumbent (no exact engine, matching the sweep above).
void BM_Portfolio4Threads(benchmark::State& state) {
  const topo::Butterfly bf(static_cast<std::uint32_t>(state.range(0)));
  cut::PortfolioOptions opts;
  opts.master_seed = 0xbe7cull;
  opts.num_threads = 4;
  opts.run_branch_bound = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cut::min_bisection_portfolio(bf.graph(), opts));
  }
}
BENCHMARK(BM_Portfolio4Threads)->Arg(16)->Arg(64);

// Incumbent value for exact search: branch-and-bound from a cold start
// vs consuming a multilevel cut as its live upper bound (what the
// portfolio does). Same proof, smaller tree.
void BM_BranchBound_Cold_W16(benchmark::State& state) {
  const topo::WrappedButterfly wb(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cut::min_bisection_branch_bound(wb.graph()));
  }
}
BENCHMARK(BM_BranchBound_Cold_W16);

void BM_BranchBound_HeuristicIncumbent_W16(benchmark::State& state) {
  const topo::WrappedButterfly wb(16);
  const auto ml = cut::min_bisection_multilevel(wb.graph());
  for (auto _ : state) {
    std::atomic<std::size_t> incumbent{ml.capacity};
    cut::BranchBoundOptions opts;
    opts.live_bound = &incumbent;
    benchmark::DoNotOptimize(
        cut::min_bisection_branch_bound(wb.graph(), opts));
  }
}
BENCHMARK(BM_BranchBound_HeuristicIncumbent_W16);

// Supervisor resilience telemetry lands in the JSON record: status (0 =
// exact-optimal, 1 = degraded-heuristic, 2 = failed), retries consumed,
// the ladder step that produced the answer, and the supervised solve's
// own wall clock — so a perf dashboard can tell a clean exact run from
// one that survived by degrading.
void report_supervision(benchmark::State& state,
                        robust::SolveStatus status, unsigned retries,
                        unsigned degradation_step, double wall_seconds) {
  state.counters["status"] = static_cast<double>(status);
  state.counters["retries"] = retries;
  state.counters["degradation_step"] = degradation_step;
  state.counters["wall_clock_s"] = wall_seconds;
  state.SetLabel(robust::to_string(status));
}

// The supervisor around the exact engine on an unconstrained solve: the
// delta against BM_BranchBoundBisection_B8 is the supervision overhead
// (one progress cell store per flush, a token poll, a report).
void BM_SupervisedBisection_B8(benchmark::State& state) {
  const topo::Butterfly bf(8);
  const robust::Supervisor sup;
  robust::SolveReport rep;
  for (auto _ : state) {
    rep = sup.solve_bisection(bf.graph());
    benchmark::DoNotOptimize(rep);
  }
  report_supervision(state, rep.status, rep.retries, rep.degradation_step,
                     rep.wall_seconds);
}
BENCHMARK(BM_SupervisedBisection_B8);

// A deliberately starved deadline: the ladder degrades instead of
// hanging, and the JSON row records how far down it went.
void BM_SupervisedBisection_TightDeadline_B16(benchmark::State& state) {
  const topo::Butterfly bf(16);
  robust::SupervisorOptions so;
  so.deadline_seconds = 0.02;
  const robust::Supervisor sup(so);
  robust::SolveReport rep;
  for (auto _ : state) {
    rep = sup.solve_bisection(bf.graph());
    benchmark::DoNotOptimize(rep);
  }
  report_supervision(state, rep.status, rep.retries, rep.degradation_step,
                     rep.wall_seconds);
}
BENCHMARK(BM_SupervisedBisection_TightDeadline_B16);

void BM_SupervisedExpansion_B4(benchmark::State& state) {
  const topo::Butterfly bf(4);
  const robust::Supervisor sup;
  robust::ExpansionReport rep;
  for (auto _ : state) {
    rep = sup.solve_expansion(bf.graph());
    benchmark::DoNotOptimize(rep);
  }
  report_supervision(state, rep.status, rep.retries, rep.degradation_step,
                     rep.wall_seconds);
}
BENCHMARK(BM_SupervisedExpansion_B4);

void BM_MosAnalyticOptimum(benchmark::State& state) {
  const auto j = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cut::mos_m2_bisection_value(j));
  }
}
BENCHMARK(BM_MosAnalyticOptimum)->Arg(1024)->Arg(1 << 16)->Arg(1 << 20);

void BM_ExactExpansionSweep_B4(benchmark::State& state) {
  const topo::Butterfly bf(4);
  for (auto _ : state) {
    expansion::ExactExpansionOptions opts;
    opts.keep_witnesses = false;
    benchmark::DoNotOptimize(expansion::exact_expansion(bf.graph(), opts));
  }
}
BENCHMARK(BM_ExactExpansionSweep_B4);

void BM_BenesLooping(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const topo::Benes benes(n);
  Rng rng(9);
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  shuffle(perm, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::route_permutation(benes, perm));
  }
}
BENCHMARK(BM_BenesLooping)->Arg(16)->Arg(64)->Arg(256);

void BM_ButterflyConstruction(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::Butterfly(n));
  }
}
BENCHMARK(BM_ButterflyConstruction)->Arg(256)->Arg(4096);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults to writing BENCH_solvers.json next
// to the binary's working directory so every run leaves a machine-
// readable record (EXPERIMENTS.md documents the schema). Explicit
// --benchmark_out flags still win.
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_solvers.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
