// E11 — solver performance (google-benchmark): the exact engines,
// the heuristics, the analytic MOS optimum, and Beneš routing.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/rng.hpp"
#include "cut/branch_bound.hpp"
#include "cut/brute_force.hpp"
#include "cut/constructive.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "cut/kernighan_lin.hpp"
#include "cut/mos_theory.hpp"
#include "cut/multilevel.hpp"
#include "cut/simulated_annealing.hpp"
#include "cut/spectral_bisection.hpp"
#include "expansion/expansion.hpp"
#include "routing/benes_route.hpp"
#include "topology/benes.hpp"
#include "topology/butterfly.hpp"

namespace {

using namespace bfly;

void BM_ExhaustiveBisection_B4(benchmark::State& state) {
  const topo::Butterfly bf(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cut::min_bisection_exhaustive(bf.graph()));
  }
}
BENCHMARK(BM_ExhaustiveBisection_B4);

void BM_BranchBoundBisection_B8(benchmark::State& state) {
  const topo::Butterfly bf(8);
  for (auto _ : state) {
    cut::BranchBoundOptions opts;
    opts.initial_bound = 8;
    benchmark::DoNotOptimize(
        cut::min_bisection_branch_bound(bf.graph(), opts));
  }
}
BENCHMARK(BM_BranchBoundBisection_B8);

void BM_KernighanLin(benchmark::State& state) {
  const topo::Butterfly bf(static_cast<std::uint32_t>(state.range(0)));
  cut::KernighanLinOptions opts;
  opts.restarts = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cut::min_bisection_kernighan_lin(bf.graph(), opts));
  }
}
BENCHMARK(BM_KernighanLin)->Arg(8)->Arg(16);

void BM_FiducciaMattheyses(benchmark::State& state) {
  const topo::Butterfly bf(static_cast<std::uint32_t>(state.range(0)));
  cut::FiducciaMattheysesOptions opts;
  opts.restarts = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cut::min_bisection_fiduccia_mattheyses(bf.graph(), opts));
  }
}
BENCHMARK(BM_FiducciaMattheyses)->Arg(16)->Arg(64)->Arg(256);

void BM_SimulatedAnnealing_B16(benchmark::State& state) {
  const topo::Butterfly bf(16);
  cut::SimulatedAnnealingOptions opts;
  opts.restarts = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cut::min_bisection_simulated_annealing(bf.graph(), opts));
  }
}
BENCHMARK(BM_SimulatedAnnealing_B16);

void BM_Multilevel(benchmark::State& state) {
  const topo::Butterfly bf(static_cast<std::uint32_t>(state.range(0)));
  cut::MultilevelOptions opts;
  opts.cycles = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cut::min_bisection_multilevel(bf.graph(), opts));
  }
}
BENCHMARK(BM_Multilevel)->Arg(64)->Arg(256)->Arg(1024);

void BM_SpectralBisection(benchmark::State& state) {
  const topo::Butterfly bf(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cut::min_bisection_spectral(bf.graph()));
  }
}
BENCHMARK(BM_SpectralBisection)->Arg(64)->Arg(256);

void BM_MosAnalyticOptimum(benchmark::State& state) {
  const auto j = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cut::mos_m2_bisection_value(j));
  }
}
BENCHMARK(BM_MosAnalyticOptimum)->Arg(1024)->Arg(1 << 16)->Arg(1 << 20);

void BM_ExactExpansionSweep_B4(benchmark::State& state) {
  const topo::Butterfly bf(4);
  for (auto _ : state) {
    expansion::ExactExpansionOptions opts;
    opts.keep_witnesses = false;
    benchmark::DoNotOptimize(expansion::exact_expansion(bf.graph(), opts));
  }
}
BENCHMARK(BM_ExactExpansionSweep_B4);

void BM_BenesLooping(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const topo::Benes benes(n);
  Rng rng(9);
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  shuffle(perm, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::route_permutation(benes, perm));
  }
}
BENCHMARK(BM_BenesLooping)->Arg(16)->Arg(64)->Arg(256);

void BM_ButterflyConstruction(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::Butterfly(n));
  }
}
BENCHMARK(BM_ButterflyConstruction)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
